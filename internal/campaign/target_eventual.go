package campaign

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"neat/internal/core"
	"neat/internal/eventual"
	"neat/internal/history"
	"neat/internal/netsim"
	"neat/internal/resilience"
)

// eventualTarget fuzzes the Dynamo-style eventually consistent store
// under a consolidation policy. Two clients write the same key through
// different coordinators; after the heal the replicas must converge,
// and no acknowledged write that was concurrent with the surviving
// one may be silently discarded. Last-writer-wins (the studied
// default) fails that: it consolidates by wall-clock timestamp and
// drops one side of every concurrent pair (the Jepsen Redis data
// loss). Vector causality keeps concurrent writes as siblings — the
// safe configuration.
//
// The instance records writes with the vector clock each
// acknowledgement carried and final per-replica sibling sets; the
// generic convergence checker, parameterized by vector-clock
// supersession, judges reconciliation and acknowledged-write
// survival.
type eventualTarget struct {
	name   string
	policy eventual.ConsolidationPolicy
}

func (t *eventualTarget) Name() string { return t.name }

// Safe marks the vector-causality variant for the CI safe gate.
func (t *eventualTarget) Safe() bool { return t.policy == eventual.VectorCausality }

func (t *eventualTarget) Topology() Topology {
	return Topology{Servers: ids("e", 3), Clients: []netsim.NodeID{"c1", "c2"}}
}

func (t *eventualTarget) Checks() []history.Check {
	return []history.Check{
		history.Convergence(history.ConvergeSpec{
			ReadKind:          "versions",
			DisagreeInvariant: "convergence",
			WriteKind:         "put",
			OnlyFaulted:       true,
			Supersedes:        vclockSupersedes,
		}),
		// Post-heal liveness: a write on the dedicated probe key plus a
		// per-replica read of it. Convergence of the workload key is the
		// Convergence checker's business.
		history.Recovery(history.RecoverySpec{}),
	}
}

// vclockSupersedes parameterizes the convergence checker with the
// store's causality: a survivor legitimately supersedes a missing
// acknowledged write iff its clock is causally at or after the
// write's acknowledgement clock — the survivor incorporated it, even
// if no client-visible read ever exposed the incorporation (a
// timed-out Put the coordinator applied anyway extends the same
// causal chain). A survivor concurrent with the write does not.
func vclockSupersedes(survivorAux, ackedAux string) bool {
	sc, err1 := eventual.ParseVClock(survivorAux)
	ac, err2 := eventual.ParseVClock(ackedAux)
	if err1 != nil || err2 != nil {
		return false
	}
	o := sc.Compare(ac)
	return o == eventual.After || o == eventual.Equal
}

func (t *eventualTarget) Deploy(eng *core.Engine, rec *history.Recorder) (Instance, error) {
	cfg := eventual.Config{
		Replicas:            t.Topology().Servers,
		Policy:              t.policy,
		AntiEntropyInterval: 15 * time.Millisecond,
		RPCTimeout:          20 * time.Millisecond,
	}
	sys := eventual.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return nil, err
	}
	in := &eventualInstance{eng: eng, rec: rec, replicas: cfg.Replicas}
	in.writers[0] = &eventualWriter{cl: eventual.NewClient(eng.Network(), "c1"), client: "c1", coord: "e1"}
	in.writers[1] = &eventualWriter{cl: eventual.NewClient(eng.Network(), "c2"), client: "c2", coord: "e2"}
	return in, nil
}

// eventualWriter is one client bound to its coordinator replica, the
// way a partitioned application instance keeps talking to its side.
type eventualWriter struct {
	cl     *eventual.Client
	client string
	coord  netsim.NodeID
}

const eventualKey = "ek"

type eventualInstance struct {
	eng      *core.Engine
	rec      *history.Recorder
	replicas []netsim.NodeID
	writers  [2]*eventualWriter
}

func (in *eventualInstance) Step(ctx *StepCtx) {
	for i, w := range in.writers {
		if ctx.IsPaused(w.cl.ID()) {
			continue
		}
		val := fmt.Sprintf("c%d-op%d", i+1, ctx.Op)
		ref := in.rec.Begin(history.Op{Client: w.client, Kind: "put", Key: eventualKey, Input: val})
		ver, err := w.cl.PutV(w.coord, eventualKey, val)
		ref.End(history.OutcomeOf(err, eventual.MaybeExecuted(err)), "")
		if err == nil {
			// The acknowledgement's vector clock is the write context;
			// the convergence checker compares survivors against it.
			ref.SetAux(ver.Clock.String())
		}
	}
	ctx.Clock.Sleep(time.Duration(ctx.Rng.Intn(8)) * time.Millisecond)
}

// Observe waits for anti-entropy to reconcile every replica onto one
// sibling set (bounded), then records each replica's final sibling
// set — values and their vector clocks — into the history.
func (in *eventualInstance) Observe(*StepCtx) {
	read := func(rep netsim.NodeID) ([]eventual.Version, error) {
		vers, err := in.writers[0].cl.GetVersions(rep, eventualKey)
		if err != nil && eventual.IsNotFound(err) {
			return nil, nil
		}
		sort.Slice(vers, func(i, j int) bool { return vers[i].Val < vers[j].Val })
		return vers, err
	}
	in.eng.WaitUntil(2*time.Second, func() bool {
		var first string
		for i, rep := range in.replicas {
			vers, err := read(rep)
			if err != nil {
				return false
			}
			joined := joinVersionVals(vers)
			if i == 0 {
				first = joined
			} else if joined != first {
				return false
			}
		}
		return true
	})
	for _, rep := range in.replicas {
		ref := in.rec.Begin(history.Op{Client: "c1", Kind: "versions", Key: eventualKey, Node: string(rep)})
		vers, err := read(rep)
		if err != nil {
			ref.End(history.Failed, "")
			continue
		}
		clocks := make([]string, len(vers))
		for i, v := range vers {
			clocks[i] = v.Clock.String()
		}
		ref.End(history.Ok, joinVersionVals(vers))
		ref.SetAux(strings.Join(clocks, ";"))
	}
}

func joinVersionVals(vs []eventual.Version) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.Val
	}
	return strings.Join(parts, ",")
}

// eventualProbeKey is the dedicated probe register, separate from the
// contended workload key.
const eventualProbeKey = "pe"

// Probe validates recovery: one write of the dedicated probe key
// through c1's coordinator, then a read of it from every replica. A
// replica that has not yet anti-entropied the key answers not-found —
// definitive, and counted as alive.
func (in *eventualInstance) Probe(ctx *StepCtx) bool {
	w := in.writers[0]
	val := fmt.Sprintf("probe-op%d", ctx.Op)
	ref := in.rec.Begin(history.Op{Client: w.client, Kind: "probe-put", Key: eventualProbeKey, Input: val})
	err := probeDo(ctx, nil, func() error {
		_, err := w.cl.PutV(w.coord, eventualProbeKey, val)
		return err
	})
	ref.End(history.OutcomeOf(err, eventual.MaybeExecuted(err)), "")
	ok := err == nil
	for _, rep := range in.replicas {
		rref := in.rec.Begin(history.Op{Client: w.client, Kind: "probe-versions", Key: eventualProbeKey, Node: string(rep)})
		var got string
		verr := probeDo(ctx, func(err error) resilience.Class {
			if eventual.IsNotFound(err) {
				return resilience.Fatal
			}
			return resilience.Retryable
		}, func() error {
			vers, err := w.cl.GetVersions(rep, eventualProbeKey)
			if err == nil {
				sort.Slice(vers, func(i, j int) bool { return vers[i].Val < vers[j].Val })
				got = joinVersionVals(vers)
			}
			return err
		})
		switch {
		case verr == nil:
			rref.End(history.Ok, got)
		case eventual.IsNotFound(verr):
			rref.EndNote(history.Ok, "", "missing")
		default:
			rref.End(history.OutcomeOf(verr, eventual.MaybeExecuted(verr)), "")
			ok = false
		}
	}
	return ok
}

func (in *eventualInstance) Close() {
	for _, w := range in.writers {
		w.cl.Close()
	}
}
