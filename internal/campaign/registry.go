package campaign

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"neat/internal/election"
	"neat/internal/eventual"
)

var (
	regMu    sync.Mutex
	registry = make(map[string]Target)
)

// Register adds a target to the global registry. It panics on
// duplicate names — targets are registered from init functions and a
// collision is a programming error.
func Register(t Target) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[t.Name()]; dup {
		panic(fmt.Sprintf("campaign: duplicate target %q", t.Name()))
	}
	registry[t.Name()] = t
}

// Lookup returns the named target.
func Lookup(name string) (Target, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	t, ok := registry[name]
	return t, ok
}

// Names lists every registered target, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SafeTarget is implemented by targets whose configuration carries the
// studied system's fix: a safe target is expected to stay
// zero-violation under every fault kind, and CI gates on exactly that
// set (cmd/neat-fuzz -list-safe).
type SafeTarget interface {
	Safe() bool
}

// SafeNames lists the registered targets that declare themselves safe,
// sorted — the generated safe-gate list.
func SafeNames() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for name, t := range registry {
		if s, ok := t.(SafeTarget); ok && s.Safe() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Select resolves a comma-separated target spec. Empty or "all" means
// every registered target.
func Select(spec string) ([]Target, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		var out []Target
		for _, name := range Names() {
			t, _ := Lookup(name)
			out = append(out, t)
		}
		return out, nil
	}
	var out []Target
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		t, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("campaign: unknown target %q (known: %s)",
				name, strings.Join(Names(), ", "))
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: empty target spec %q", spec)
	}
	return out, nil
}

func init() {
	for _, m := range []struct {
		suffix string
		mode   election.Mode
	}{
		{"quorum", election.ModeQuorum},
		{"longest-log", election.ModeLongestLog},
		{"latest-ts", election.ModeLatestTS},
		{"lowest-id", election.ModeLowestID},
	} {
		Register(&kvTarget{name: "kvstore/" + m.suffix, mode: m.mode})
	}
	Register(&raftTarget{})
	Register(&lockTarget{name: "locksvc", syncBackups: false})
	Register(&lockTarget{name: "locksvc/sync", syncBackups: true})
	Register(&mqueueTarget{name: "mqueue", safe: false})
	Register(&mqueueTarget{name: "mqueue/safe", safe: true})
	Register(&objstoreTarget{})
	Register(&eventualTarget{name: "eventual/lww", policy: eventual.LastWriterWins})
	Register(&eventualTarget{name: "eventual/vector", policy: eventual.VectorCausality})
	// The paper's data-plane systems: the flawed configurations
	// reproduce HDFS-1384/HDFS-577/MooseFS #131-#132, MAPREDUCE-4819,
	// and DKron #379; the /safe variants carry each system's fix and
	// are expected to stay zero-violation.
	Register(&dfsTarget{name: "dfs", safe: false})
	Register(&dfsTarget{name: "dfs/safe", safe: true})
	Register(&mapredTarget{name: "mapred", safe: false})
	Register(&mapredTarget{name: "mapred/safe", safe: true})
	Register(&jobschedTarget{name: "jobsched", safe: false})
	Register(&jobschedTarget{name: "jobsched/safe", safe: true})
}
