package campaign

import (
	"math/rand"

	"neat/internal/netsim"
)

// Mutation operators for the coverage-guided search. Mutate derives a
// new schedule from the corpus instead of generating one from scratch:
// pick a parent that previously reached a novel state, then perturb it
// — nudge fault timing, re-draw a magnitude, swap the victim, add or
// remove one fault, or splice two corpus entries together. Every draw
// comes from the round's schedule RNG, so the derived schedule is a
// pure function of (campaign seed, target, round, corpus snapshot) and
// campaigns stay byte-identical across worker counts.

// mutationOps is how many operator applications one Mutate performs:
// one or two, drawn from rng.
const mutationOps = 2

// Mutate derives a schedule by mutating a parent drawn from pool
// (which must be non-empty). The result respects Generate's bounds:
// ops in [minOps, maxOps], at most maxFaults faults, at most one disk
// fault, heals strictly inside the schedule, victims from topo.
func Mutate(rng *rand.Rand, topo Topology, kinds []FaultKind, pool []Schedule) Schedule {
	if len(kinds) == 0 {
		kinds = AllFaultKinds
	}
	sched := cloneSchedule(pickParent(rng, pool))
	n := 1 + rng.Intn(mutationOps)
	for i := 0; i < n; i++ {
		applyMutation(rng, topo, kinds, &sched, pool)
	}
	normalizeSchedule(rng, topo, kinds, &sched)
	return sched
}

// pickParent draws a mutation parent with a recency bias: half the
// draws come from the newest half of the pool (the schedules that most
// recently reached novel coverage), half from anywhere. Fresh corpus
// entries are the search frontier; pure uniform selection dilutes them
// under the accumulated history as the corpus grows.
func pickParent(rng *rand.Rand, pool []Schedule) Schedule {
	if len(pool) > 1 && rng.Intn(2) == 0 {
		half := (len(pool) + 1) / 2
		return pool[len(pool)-half+rng.Intn(half)]
	}
	return pool[rng.Intn(len(pool))]
}

func applyMutation(rng *rand.Rand, topo Topology, kinds []FaultKind, sched *Schedule, pool []Schedule) {
	if len(sched.Faults) == 0 {
		sched.Faults = append(sched.Faults, genFault(rng, topo, sched.Ops, kinds, new(bool)))
		return
	}
	switch rng.Intn(6) {
	case 0: // perturb timing: new injection point, re-drawn heal
		f := &sched.Faults[rng.Intn(len(sched.Faults))]
		f.At = rng.Intn(sched.Ops)
		f.HealAt = -1
		if f.Kind != FaultRestart && rng.Intn(2) == 0 {
			if h := f.At + 1 + rng.Intn(sched.Ops-f.At); h < sched.Ops {
				f.HealAt = h
			}
		}
	case 1: // perturb magnitude within the kind's generation bounds
		f := &sched.Faults[rng.Intn(len(sched.Faults))]
		mutateMagnitude(rng, f)
	case 2: // swap victims: re-draw the same kind against fresh groups
		i := rng.Intn(len(sched.Faults))
		old := sched.Faults[i]
		diskUsed := scheduleHasDisk(sched.Faults, i)
		nf := genFault(rng, topo, sched.Ops, []FaultKind{old.Kind}, &diskUsed)
		// Keep the parent's timing: the operator moves the fault to new
		// victims, not to a new moment.
		nf.At, nf.HealAt = old.At, old.HealAt
		if nf.Kind == FaultRestart {
			nf.HealAt = -1
		}
		sched.Faults[i] = nf
	case 3: // add one fault (replace one when already at the cap)
		diskUsed := scheduleHasDisk(sched.Faults, -1)
		nf := genFault(rng, topo, sched.Ops, kinds, &diskUsed)
		if len(sched.Faults) < maxFaults {
			sched.Faults = append(sched.Faults, nf)
		} else {
			sched.Faults[rng.Intn(len(sched.Faults))] = nf
		}
	case 4: // remove one fault (re-draw it when it is the only one)
		i := rng.Intn(len(sched.Faults))
		if len(sched.Faults) > 1 {
			sched.Faults = append(sched.Faults[:i], sched.Faults[i+1:]...)
		} else {
			diskUsed := false
			sched.Faults[i] = genFault(rng, topo, sched.Ops, kinds, &diskUsed)
		}
	case 5: // splice: head of this schedule, tail of another corpus entry
		other := pool[rng.Intn(len(pool))]
		head := sched.Faults[:rng.Intn(len(sched.Faults)+1)]
		var tail []Fault
		if len(other.Faults) > 0 {
			tail = other.Faults[rng.Intn(len(other.Faults)+1):]
		}
		faults := make([]Fault, 0, len(head)+len(tail))
		faults = append(faults, head...)
		faults = append(faults, cloneSchedule(Schedule{Faults: tail}).Faults...)
		if other.Ops > sched.Ops {
			sched.Ops = other.Ops
		}
		sched.Faults = faults
	}
}

// mutateMagnitude re-draws the kind's magnitude parameters inside the
// same bounds Generate uses. Kinds without a magnitude knob flip the
// heal style instead, so the operator is never a no-op draw pattern.
func mutateMagnitude(rng *rand.Rand, f *Fault) {
	switch f.Kind {
	case FaultSlow:
		f.DelayMs = minSlowDelayMs + rng.Intn(maxSlowDelayMs-minSlowDelayMs+1)
	case FaultLoss:
		f.Rate = minLossRate + (maxLossRate-minLossRate)*rng.Float64()
	case FaultFlaky:
		f.Rate = minFlakyRate + (maxFlakyRate-minFlakyRate)*rng.Float64()
		f.DelayMs = minWindowMs + rng.Intn(maxWindowMs-minWindowMs+1)
	case FaultFlap:
		f.DelayMs = minFlapMs + rng.Intn(maxFlapMs-minFlapMs+1)
	case FaultSkew:
		off := minSkewOffMs + rng.Intn(maxSkewOffMs-minSkewOffMs+1)
		if rng.Intn(2) == 0 {
			off = -off
		}
		f.DelayMs = off
		f.Rate = minSkewRate + (maxSkewRate-minSkewRate)*rng.Float64()
	case FaultRestart:
		f.DelayMs = minRestartMs + rng.Intn(maxRestartMs-minRestartMs+1)
	case FaultDisk:
		if rng.Intn(2) == 0 {
			f.Mode = DiskModeLost
		} else {
			f.Mode = DiskModeTorn
		}
	default: // complete, partial, simplex, crash, pause: toggle heal style
		if f.HealAt >= 0 {
			f.HealAt = -1
		} else if h := f.At + 1 + rng.Intn(maxOps-f.At); h < maxOps {
			f.HealAt = h
		}
	}
}

// scheduleHasDisk reports whether any fault other than index skip is a
// disk fault — the at-most-one-lying-disk invariant Generate keeps.
func scheduleHasDisk(faults []Fault, skip int) bool {
	for i, f := range faults {
		if i != skip && f.Kind == FaultDisk {
			return true
		}
	}
	return false
}

// normalizeSchedule re-establishes Generate's invariants after
// mutation and splicing: ops inside [minOps, maxOps], at most
// maxFaults faults, injection and heal indices inside the schedule,
// restart heals through their timer only, one disk fault at most, and
// every victim present in the topology (hand-edited corpus files can
// name nodes the target does not have). A schedule left empty by the
// clean-up gets one fresh fault — a schedule with nothing to inject
// explores nothing.
func normalizeSchedule(rng *rand.Rand, topo Topology, kinds []FaultKind, sched *Schedule) {
	if sched.Ops < minOps {
		sched.Ops = minOps
	}
	if sched.Ops > maxOps {
		sched.Ops = maxOps
	}
	if len(sched.Faults) > maxFaults {
		sched.Faults = sched.Faults[:maxFaults]
	}
	known := make(map[netsim.NodeID]bool,
		len(topo.Servers)+len(topo.Services)+len(topo.Clients))
	for _, set := range [][]netsim.NodeID{topo.Servers, topo.Services, topo.Clients} {
		for _, id := range set {
			known[id] = true
		}
	}
	kept := sched.Faults[:0]
	diskUsed := false
	for _, f := range sched.Faults {
		if !groupKnown(f.GroupA, known) || !groupKnown(f.GroupB, known) || len(f.GroupA) == 0 {
			continue
		}
		if f.Kind == FaultDisk {
			if diskUsed {
				f = f.crash(f.GroupA[0])
			} else {
				diskUsed = true
			}
		}
		if f.At < 0 {
			f.At = 0
		}
		if f.At >= sched.Ops {
			f.At = sched.Ops - 1
		}
		if f.Kind == FaultRestart {
			f.HealAt = -1
		} else if f.HealAt >= 0 && (f.HealAt <= f.At || f.HealAt >= sched.Ops) {
			f.HealAt = -1
		}
		kept = append(kept, f)
	}
	sched.Faults = kept
	if len(sched.Faults) == 0 {
		du := false
		sched.Faults = append(sched.Faults, genFault(rng, topo, sched.Ops, kinds, &du))
	}
}

func groupKnown(g []netsim.NodeID, known map[netsim.NodeID]bool) bool {
	for _, id := range g {
		if !known[id] {
			return false
		}
	}
	return true
}
