package campaign

import (
	"math/rand"
	"reflect"
	"testing"

	"neat/internal/netsim"
)

// mutateTestPool builds a deterministic corpus pool of freshly
// generated schedules to mutate against.
func mutateTestPool(topo Topology, n int, seed int64) []Schedule {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]Schedule, n)
	for i := range pool {
		pool[i] = Generate(rng, topo)
	}
	return pool
}

func mutateTestTopology(t *testing.T) Topology {
	t.Helper()
	targets, err := Select("dfs")
	if err != nil {
		t.Fatal(err)
	}
	return targets[0].Topology()
}

// TestMutateDeterministic: Mutate draws everything from the supplied
// rng, so equal seeds must yield deeply equal schedules — the property
// the campaign's cross-worker byte-identity rests on.
func TestMutateDeterministic(t *testing.T) {
	topo := mutateTestTopology(t)
	pool := mutateTestPool(topo, 6, 99)
	for seed := int64(0); seed < 200; seed++ {
		a := Mutate(rand.New(rand.NewSource(seed)), topo, nil, pool)
		b := Mutate(rand.New(rand.NewSource(seed)), topo, nil, pool)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: mutations diverged:\n%v\nvs\n%v", seed, a, b)
		}
	}
}

// TestMutateRespectsGenerateBounds: whatever the operators do —
// splicing, adding, perturbing — the result must satisfy every
// invariant Generate guarantees, because the runner injects mutated
// schedules through the exact same fault machinery.
func TestMutateRespectsGenerateBounds(t *testing.T) {
	topo := mutateTestTopology(t)
	known := make(map[netsim.NodeID]bool)
	for _, set := range [][]netsim.NodeID{topo.Servers, topo.Services, topo.Clients} {
		for _, id := range set {
			known[id] = true
		}
	}
	pool := mutateTestPool(topo, 8, 7)
	for seed := int64(0); seed < 500; seed++ {
		s := Mutate(rand.New(rand.NewSource(seed)), topo, nil, pool)
		if s.Ops < minOps || s.Ops > maxOps {
			t.Fatalf("seed %d: ops %d outside [%d, %d]", seed, s.Ops, minOps, maxOps)
		}
		if len(s.Faults) == 0 || len(s.Faults) > maxFaults {
			t.Fatalf("seed %d: %d faults outside [1, %d]", seed, len(s.Faults), maxFaults)
		}
		disks := 0
		for _, f := range s.Faults {
			if f.Kind == FaultDisk {
				disks++
			}
			if f.At < 0 || f.At >= s.Ops {
				t.Fatalf("seed %d: fault %q injects at %d outside [0, %d)", seed, f.String(), f.At, s.Ops)
			}
			if f.HealAt != -1 && (f.HealAt <= f.At || f.HealAt >= s.Ops) {
				t.Fatalf("seed %d: fault %q heals at %d, not in (%d, %d)", seed, f.String(), f.HealAt, f.At, s.Ops)
			}
			if f.Kind == FaultRestart && f.HealAt != -1 {
				t.Fatalf("seed %d: restart fault carries heal index %d; restarts heal through their timer", seed, f.HealAt)
			}
			if len(f.GroupA) == 0 {
				t.Fatalf("seed %d: fault %q has no victims", seed, f.String())
			}
			for _, g := range [][]netsim.NodeID{f.GroupA, f.GroupB} {
				for _, id := range g {
					if !known[id] {
						t.Fatalf("seed %d: fault %q names node %q outside the topology", seed, f.String(), id)
					}
				}
			}
		}
		if disks > 1 {
			t.Fatalf("seed %d: %d disk faults; at most one lying disk per schedule", seed, disks)
		}
	}
}

// TestMutateDoesNotAliasPool: corpus entries are mutation parents for
// every later round; an operator writing through a shared fault slice
// would corrupt the pool for its siblings.
func TestMutateDoesNotAliasPool(t *testing.T) {
	topo := mutateTestTopology(t)
	pool := mutateTestPool(topo, 4, 3)
	snapshot := make([]Schedule, len(pool))
	for i, s := range pool {
		snapshot[i] = cloneSchedule(s)
	}
	for seed := int64(0); seed < 300; seed++ {
		Mutate(rand.New(rand.NewSource(seed)), topo, nil, pool)
	}
	if !reflect.DeepEqual(pool, snapshot) {
		t.Fatalf("mutation modified the parent pool:\n%v\nvs\n%v", pool, snapshot)
	}
}

// TestMutateDropsForeignVictims: a hand-edited corpus file can name
// nodes the target does not have; normalization must drop such faults
// rather than hand the engine an unknown node.
func TestMutateDropsForeignVictims(t *testing.T) {
	topo := mutateTestTopology(t)
	pool := []Schedule{{
		Ops: 8,
		Faults: []Fault{{
			Kind:   FaultCrash,
			At:     2,
			HealAt: -1,
			GroupA: []netsim.NodeID{"no-such-node"},
		}},
	}}
	for seed := int64(0); seed < 50; seed++ {
		s := Mutate(rand.New(rand.NewSource(seed)), topo, nil, pool)
		for _, f := range s.Faults {
			for _, id := range append(append([]netsim.NodeID{}, f.GroupA...), f.GroupB...) {
				if id == "no-such-node" {
					t.Fatalf("seed %d: foreign victim survived normalization in %q", seed, f.String())
				}
			}
		}
		if len(s.Faults) == 0 {
			t.Fatalf("seed %d: schedule left with no faults", seed)
		}
	}
}
