package kvstore

import (
	"errors"
	"hash/fnv"
	"math/rand"
	"time"

	"neat/internal/netsim"
	"neat/internal/resilience"
	"neat/internal/transport"
)

// Client is a key-value client bound to one client host on the fabric.
// A partitioned client can only talk to replicas on its side — exactly
// the "client access to one side" condition of Table 5.
type Client struct {
	ep       *transport.Endpoint
	replicas []netsim.NodeID
	timeout  time.Duration
	// pol governs sweep retries (zero: one sweep, the historical
	// behaviour); rng seeds the backoff so retry timing is
	// deterministic per client identity.
	pol resilience.Policy
	rng *rand.Rand

	lastLeader netsim.NodeID
}

// NewClient attaches a client host to the fabric.
func NewClient(n *netsim.Network, id netsim.NodeID, replicas []netsim.NodeID, timeout time.Duration) *Client {
	if timeout == 0 {
		timeout = 100 * time.Millisecond
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return &Client{
		ep:       transport.NewEndpoint(n, id),
		replicas: replicas,
		timeout:  timeout,
		rng:      rand.New(rand.NewSource(int64(h.Sum64()))),
	}
}

// NewClientWithRetry attaches a client whose operations retry failed
// replica sweeps under pol — the shared resilience layer's jittered
// backoff instead of an ad-hoc loop. Every client operation is
// idempotent (puts and deletes carry their full intended state), so
// pol.RetryAmbiguous is safe here. The zero policy keeps the
// historical single-sweep behaviour.
func NewClientWithRetry(n *netsim.Network, id netsim.NodeID, replicas []netsim.NodeID, timeout time.Duration, pol resilience.Policy) *Client {
	c := NewClient(n, id, replicas, timeout)
	c.pol = pol
	return c
}

// ID returns the client's node ID.
func (c *Client) ID() netsim.NodeID { return c.ep.ID() }

// Close detaches the client.
func (c *Client) Close() { c.ep.Close() }

// MaybeExecuted reports whether the failed operation may still have
// been applied: some attempt failed at the transport level (on a
// slow, lossy, or simplex-partitioned link the request can be fully
// executed with only the acknowledgement lost — the paper's
// request-routing silent success, Finding 4), or the leader reported
// a failed write concern after applying the write locally
// (ApplyBeforeReplicate, the Elasticsearch semantics the paper
// studied). Callers accounting for durability must treat such
// failures as possibly-applied, not as definitive refusals.
func MaybeExecuted(err error) bool {
	return transport.MaybeExecuted(err) || IsWriteFailed(err)
}

// do runs an operation against the current leader, retrying whole
// replica sweeps under the client's resilience policy (one sweep when
// the policy is zero).
func (c *Client) do(method string, body any) (any, error) {
	var resp any
	res := resilience.Do(c.ep.Clock(), c.rng, c.pol, classifySweep, func(int) error {
		r, err := c.sweep(method, body)
		resp = r
		return err
	})
	return resp, res.Err
}

// classifySweep maps one sweep's failure for the retry layer: a
// possibly-applied failure is Ambiguous (retried only under
// RetryAmbiguous), a leaderless refusal is Retryable (a new term may
// seat a leader inside the backoff), and any other definitive
// application error is Fatal — retrying cannot change the answer.
func classifySweep(err error) resilience.Class {
	if MaybeExecuted(err) {
		return resilience.Ambiguous
	}
	if transport.IsRemote(err) {
		var nle *NotLeaderError
		if remoteNotLeader(err, &nle) {
			return resilience.Retryable
		}
		return resilience.Fatal
	}
	return resilience.Retryable
}

// sweep tries an operation once against the current leader, following
// one redirect per replica and skipping unreachable replicas. It
// returns the first successful result, or the last error seen.
func (c *Client) sweep(method string, body any) (any, error) {
	tried := make(map[netsim.NodeID]bool)
	order := make([]netsim.NodeID, 0, len(c.replicas)+1)
	if c.lastLeader != "" {
		order = append(order, c.lastLeader)
	}
	order = append(order, c.replicas...)

	// maybe records whether ANY attempt — not just the one whose error
	// is returned — failed at the transport level and may have been
	// executed with only the reply lost.
	maybe := false
	wrap := func(err error) error {
		if maybe {
			return transport.MarkMaybeExecuted(err)
		}
		return err
	}
	var lastErr error = errors.New("kvstore: no replicas")
	for _, node := range order {
		if tried[node] {
			continue
		}
		tried[node] = true
		resp, err := c.ep.Call(node, method, body, c.timeout)
		if err == nil {
			c.lastLeader = node
			return resp, nil
		}
		lastErr = err
		var nle *NotLeaderError
		if remoteNotLeader(err, &nle) {
			if nle.Leader != "" && !tried[nle.Leader] {
				resp, err2 := c.ep.Call(nle.Leader, method, body, c.timeout)
				tried[nle.Leader] = true
				if err2 == nil {
					c.lastLeader = nle.Leader
					return resp, nil
				}
				if !transport.IsRemote(err2) {
					maybe = true
				}
				lastErr = err2
			}
			continue
		}
		if transport.IsRemote(err) {
			// Application-level failure from the leader (write concern
			// not met, key missing): definitive, do not retry elsewhere.
			return resp, wrap(err)
		}
		// Transport failure: the replica may have executed the request
		// with only the reply lost; try the next.
		maybe = true
	}
	return nil, wrap(lastErr)
}

// remoteNotLeader decodes a NotLeaderError that traveled as a remote
// error string. The redirect hint survives as the suffix "try <node>".
func remoteNotLeader(err error, out **NotLeaderError) bool {
	var re *transport.RemoteError
	if !errors.As(err, &re) {
		return false
	}
	msg := re.Msg
	const prefix = "not leader"
	if len(msg) < len(prefix) || msg[:len(prefix)] != prefix {
		return false
	}
	nle := &NotLeaderError{}
	const tryMark = "try "
	if i := lastIndex(msg, tryMark); i >= 0 {
		nle.Leader = netsim.NodeID(msg[i+len(tryMark):])
	}
	*out = nle
	return true
}

func lastIndex(s, sub string) int {
	for i := len(s) - len(sub); i >= 0; i-- {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Put writes key=val through the current leader.
func (c *Client) Put(key, val string) error {
	_, err := c.do(mPut, putReq{Key: key, Val: val})
	return err
}

// Get reads key through the current leader.
func (c *Client) Get(key string) (string, error) {
	resp, err := c.do(mGet, getReq{Key: key})
	if err != nil {
		return "", err
	}
	s, _ := resp.(string)
	return s, nil
}

// Delete removes key through the current leader.
func (c *Client) Delete(key string) error {
	_, err := c.do(mDel, delReq{Key: key})
	return err
}

// PutAt writes directly against one replica with no redirect-following,
// for tests that must target a specific side of a partition.
func (c *Client) PutAt(node netsim.NodeID, key, val string) error {
	_, err := c.ep.Call(node, mPut, putReq{Key: key, Val: val}, c.timeout)
	return err
}

// GetAt reads directly from one replica.
func (c *Client) GetAt(node netsim.NodeID, key string) (string, error) {
	resp, err := c.ep.Call(node, mGet, getReq{Key: key}, c.timeout)
	if err != nil {
		return "", err
	}
	s, _ := resp.(string)
	return s, nil
}

// DeleteAt deletes directly against one replica.
func (c *Client) DeleteAt(node netsim.NodeID, key string) error {
	_, err := c.ep.Call(node, mDel, delReq{Key: key}, c.timeout)
	return err
}

// StatusOf fetches one replica's status.
func (c *Client) StatusOf(node netsim.NodeID) (StatusInfo, error) {
	resp, err := c.ep.Call(node, mStatus, nil, c.timeout)
	if err != nil {
		return StatusInfo{}, err
	}
	si, _ := resp.(StatusInfo)
	return si, nil
}

// IsNotFound reports whether the error is a missing-key error
// (possibly wrapped as a remote error).
func IsNotFound(err error) bool {
	if errors.Is(err, ErrNotFound) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && re.Msg == ErrNotFound.Error()
}

// IsWriteFailed reports whether the error is a failed write concern.
func IsWriteFailed(err error) bool {
	if errors.Is(err, ErrWriteFailed) {
		return true
	}
	var re *transport.RemoteError
	if !errors.As(err, &re) {
		return false
	}
	msg := ErrWriteFailed.Error()
	return len(re.Msg) >= len(msg) && re.Msg[:len(msg)] == msg
}
