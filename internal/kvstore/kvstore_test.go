package kvstore

import (
	"testing"
	"time"

	"neat/internal/core"
	"neat/internal/election"
	"neat/internal/netsim"
)

var replicaIDs = []netsim.NodeID{"s1", "s2", "s3"}

// testConfig returns a configuration with the timing used throughout
// the suite: 10ms heartbeats, 40ms election timeout, a generous leader
// lease so the overlap window is wide enough to observe determinstically.
func testConfig(mode election.Mode) Config {
	return Config{
		Replicas:               replicaIDs,
		ElectionMode:           mode,
		WriteConcern:           WriteMajority,
		ReadConcern:            ReadLocal,
		ApplyBeforeReplicate:   true,
		StepDownOnLostMajority: true,
		HeartbeatInterval:      10 * time.Millisecond,
		ElectionTimeout:        40 * time.Millisecond,
		LeaseMisses:            8, // overlap window of ~8 heartbeat rounds
		RPCTimeout:             30 * time.Millisecond,
	}
}

type fixture struct {
	eng *core.Engine
	sys *System
	c1  *Client // client beside s1 in partition scenarios
	c2  *Client // client beside the majority
}

func deploy(t *testing.T, cfg Config) *fixture {
	t.Helper()
	eng := core.NewEngine(core.Options{})
	for _, id := range cfg.Replicas {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("c1", core.RoleClient)
	eng.AddNode("c2", core.RoleClient)
	sys := NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	f := &fixture{
		eng: eng,
		sys: sys,
		c1:  NewClient(eng.Network(), "c1", cfg.Replicas, 80*time.Millisecond),
		c2:  NewClient(eng.Network(), "c2", cfg.Replicas, 80*time.Millisecond),
	}
	t.Cleanup(func() {
		f.c1.Close()
		f.c2.Close()
		eng.Shutdown()
	})
	return f
}

func (f *fixture) waitLeaderAmong(t *testing.T, nodes []netsim.NodeID) netsim.NodeID {
	t.Helper()
	id := f.sys.WaitForLeaderAmong(nodes, 2*time.Second)
	if id == "" {
		t.Fatalf("no leader elected among %v", nodes)
	}
	return id
}

func TestPutGetDeleteRoundTrip(t *testing.T) {
	f := deploy(t, testConfig(election.ModeQuorum))
	if err := f.c1.Put("k", "v1"); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := f.c1.Get("k")
	if err != nil || got != "v1" {
		t.Fatalf("get = %q, %v", got, err)
	}
	if err := f.c1.Delete("k"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := f.c1.Get("k"); !IsNotFound(err) {
		t.Fatalf("get after delete = %v, want not-found", err)
	}
}

func TestClientFollowsLeaderRedirect(t *testing.T) {
	f := deploy(t, testConfig(election.ModeQuorum))
	// Write directly at a follower: must be redirected.
	if err := f.c1.PutAt("s2", "k", "v"); err == nil {
		t.Fatal("direct write at follower should fail with not-leader")
	}
	// The smart client follows the redirect.
	if err := f.c1.Put("k", "v"); err != nil {
		t.Fatalf("client put: %v", err)
	}
	got, err := f.c2.Get("k")
	if err != nil || got != "v" {
		t.Fatalf("other client get = %q, %v", got, err)
	}
}

func TestWriteReplicatesToFollowers(t *testing.T) {
	f := deploy(t, testConfig(election.ModeQuorum))
	if err := f.c1.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(time.Second, func() bool {
		for _, id := range replicaIDs {
			e, okk := f.sys.Replica(id).Data()["k"]
			if !okk || e.Val != "v" {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("write never reached all replicas")
	}
}

func TestMajoritySideElectsNewLeader(t *testing.T) {
	f := deploy(t, testConfig(election.ModeQuorum))
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		t.Fatal(err)
	}
	id := f.waitLeaderAmong(t, []netsim.NodeID{"s2", "s3"})
	if id == "s1" {
		t.Fatal("old leader cannot be the majority's new leader")
	}
	// The new leader serves writes for the majority-side client.
	if err := f.c2.Put("k", "after-partition"); err != nil {
		t.Fatalf("majority-side write: %v", err)
	}
}

func TestDeposedLeaderEventuallyStepsDown(t *testing.T) {
	cfg := testConfig(election.ModeQuorum)
	cfg.LeaseMisses = 3
	f := deploy(t, cfg)
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		return f.sys.Replica("s1").Status().Role == Follower
	})
	if !ok {
		t.Fatal("isolated leader never stepped down (StepDownOnLostMajority set)")
	}
}

// TestFigure2DirtyRead reproduces the VoltDB dirty read (Figure 2,
// issue ENG-10389): a write at the deposed leader fails its write
// concern but updates the local copy, and a subsequent local read
// returns the never-committed value.
func TestFigure2DirtyRead(t *testing.T) {
	f := deploy(t, testConfig(election.ModeQuorum))
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		t.Fatal(err)
	}
	// Step 2: write at the old master fails replication...
	err := f.c1.PutAt("s1", "k", "dirty")
	if !IsWriteFailed(err) {
		t.Fatalf("write at old master = %v, want write-concern failure", err)
	}
	// Step 3: ...but a read at the old master returns the dirty value.
	got, err := f.c1.GetAt("s1", "k")
	if err != nil {
		t.Fatalf("read at old master: %v", err)
	}
	if got != "dirty" {
		t.Fatalf("read %q, want the dirty value", got)
	}
}

// TestReadMajorityPreventsDirtyRead flips the knob the fix introduces:
// with a majority read concern the deposed leader cannot answer.
func TestReadMajorityPreventsDirtyRead(t *testing.T) {
	cfg := testConfig(election.ModeQuorum)
	cfg.ReadConcern = ReadMajority
	f := deploy(t, cfg)
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		t.Fatal(err)
	}
	_ = f.c1.PutAt("s1", "k", "dirty")
	if _, err := f.c1.GetAt("s1", "k"); err == nil {
		t.Fatal("majority read at deposed leader must fail, not return dirty data")
	}
}

// TestStaleReadDuringOverlap reproduces the MongoDB stale read
// (SERVER-17975): during the leader-overlap window the old leader
// serves a value the majority has already superseded.
func TestStaleReadDuringOverlap(t *testing.T) {
	cfg := testConfig(election.ModeQuorum)
	cfg.LeaseMisses = 200 // hold the overlap window open for the whole test
	f := deploy(t, cfg)
	if err := f.c1.Put("k", "old"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		t.Fatal(err)
	}
	f.waitLeaderAmong(t, []netsim.NodeID{"s2", "s3"})
	if err := f.c2.Put("k", "new"); err != nil {
		t.Fatalf("majority write: %v", err)
	}
	got, err := f.c1.GetAt("s1", "k")
	if err != nil {
		t.Fatalf("read at old leader: %v", err)
	}
	if got != "old" {
		t.Fatalf("read %q — expected the stale value while the overlap window is open", got)
	}
}

// TestListing1SplitBrainDataLoss reproduces the Elasticsearch data
// loss of Listing 1 (issue #2488): under lowest-ID election with a
// partial partition, s2 becomes a second leader because s3 votes for
// it while still reaching s1; writes succeed on both sides; after the
// heal, the lower-ID leader wins and the other side's acknowledged
// writes are lost.
func TestListing1SplitBrainDataLoss(t *testing.T) {
	f := deploy(t, testConfig(election.ModeLowestID))
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "c2"}); err != nil {
		t.Fatal(err)
	}
	// s2 loses its leader and campaigns; s3 (which still sees s1!)
	// grants the vote — the double-voting flaw.
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		return f.sys.Replica("s2").Status().Role == Leader
	})
	if !ok {
		t.Fatal("s2 never became a second leader")
	}
	if f.sys.Replica("s1").Status().Role != Leader {
		t.Fatal("s1 should still be leader: split brain requires two")
	}
	// Writes on both sides of the partition succeed (Listing 1 lines
	// 10-11). s3 follows whichever leader spoke last, so each side may
	// need a retry while s3 flaps — the client-visible behaviour is
	// still "both writes acknowledged".
	ok = f.eng.WaitUntil(2*time.Second, func() bool {
		return f.c1.PutAt("s1", "obj1", "v1") == nil
	})
	if !ok {
		t.Fatal("side-1 write never succeeded")
	}
	ok = f.eng.WaitUntil(2*time.Second, func() bool {
		return f.c2.PutAt("s2", "obj2", "v2") == nil
	})
	if !ok {
		t.Fatal("side-2 write never succeeded")
	}
	// Heal (line 13). s2 steps down to the lower ID and syncs s1's
	// data, losing obj2.
	if err := f.eng.HealAll(); err != nil {
		t.Fatal(err)
	}
	ok = f.eng.WaitUntil(2*time.Second, func() bool {
		return f.sys.Replica("s2").Status().Role == Follower
	})
	if !ok {
		t.Fatal("s2 never stepped down after heal")
	}
	f.eng.Sleep(100 * time.Millisecond) // let consolidation finish
	// Line 14 passes: obj1 survived.
	if got, err := f.c2.Get("obj1"); err != nil || got != "v1" {
		t.Fatalf("obj1 = %q, %v; want v1", got, err)
	}
	// Line 16's assertion fails in the paper: obj2 is gone.
	if _, err := f.c2.Get("obj2"); !IsNotFound(err) {
		t.Fatalf("obj2 read = %v; want not-found (the acknowledged write was lost)", err)
	}
}

// TestBadLeaderLongestLogLosesAcknowledgedWrites reproduces Finding
// 4's bad-leader data loss: the minority leader pads its log with
// failed writes, wins the longest-log comparison at heal, and the
// majority's acknowledged write is erased.
func TestBadLeaderLongestLogLosesAcknowledgedWrites(t *testing.T) {
	f := deploy(t, testConfig(election.ModeLongestLog))
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		t.Fatal(err)
	}
	// Pad the minority leader's log with writes that fail their
	// concern but stay in its log.
	for i := 0; i < 5; i++ {
		_ = f.c1.PutAt("s1", "junk", "x")
	}
	f.waitLeaderAmong(t, []netsim.NodeID{"s2", "s3"})
	if err := f.c2.Put("k", "acknowledged"); err != nil {
		t.Fatalf("majority write should succeed: %v", err)
	}
	if err := f.eng.HealAll(); err != nil {
		t.Fatal(err)
	}
	// After consolidation the acknowledged write is gone everywhere.
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		_, err := f.c2.GetAt("s1", "k")
		if !IsNotFound(err) {
			return false
		}
		e, exists := f.sys.Replica("s2").Data()["k"]
		return !exists || e.Del || e.Val != "acknowledged"
	})
	if !ok {
		t.Fatal("acknowledged write survived — expected longest-log consolidation to erase it")
	}
}

// TestQuorumModePreservesAcknowledgedWrites is the control for the
// previous test: with term-based consolidation the majority's leader
// wins and nothing acknowledged is lost.
func TestQuorumModePreservesAcknowledgedWrites(t *testing.T) {
	f := deploy(t, testConfig(election.ModeQuorum))
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_ = f.c1.PutAt("s1", "junk", "x")
	}
	f.waitLeaderAmong(t, []netsim.NodeID{"s2", "s3"})
	if err := f.c2.Put("k", "acknowledged"); err != nil {
		t.Fatal(err)
	}
	if err := f.eng.HealAll(); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		got, err := f.c2.Get("k")
		return err == nil && got == "acknowledged"
	})
	if !ok {
		t.Fatal("acknowledged write lost under quorum mode")
	}
	// And it eventually converges onto s1 too.
	ok = f.eng.WaitUntil(2*time.Second, func() bool {
		e, exists := f.sys.Replica("s1").Data()["k"]
		return exists && e.Val == "acknowledged"
	})
	if !ok {
		t.Fatal("s1 never converged to the majority's state")
	}
}

// TestReappearanceOfDeletedData reproduces the resurrection failure
// class (ZooKeeper-2355, Aerospike forum report): a key deleted by the
// majority reappears after the heal because the minority's padded log
// wins consolidation.
func TestReappearanceOfDeletedData(t *testing.T) {
	f := deploy(t, testConfig(election.ModeLongestLog))
	if err := f.c1.Put("k", "precious"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_ = f.c1.PutAt("s1", "junk", "x")
	}
	f.waitLeaderAmong(t, []netsim.NodeID{"s2", "s3"})
	if err := f.c2.Delete("k"); err != nil {
		t.Fatalf("majority delete: %v", err)
	}
	if _, err := f.c2.Get("k"); !IsNotFound(err) {
		t.Fatal("key should be deleted on the majority side")
	}
	if err := f.eng.HealAll(); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		got, err := f.c2.Get("k")
		return err == nil && got == "precious"
	})
	if !ok {
		t.Fatal("deleted key never reappeared — expected resurrection under longest-log consolidation")
	}
}

// TestConflictingCriteriaLeaveClusterLeaderless reproduces MongoDB
// SERVER-14885: the high-priority arbiter vetoes the data node's
// candidacy and the data node vetoes the stale arbiter's, so after the
// leader is isolated nobody is elected and the side is unavailable.
func TestConflictingCriteriaLeaveClusterLeaderless(t *testing.T) {
	cfg := testConfig(election.ModePriority)
	cfg.Priorities = map[netsim.NodeID]int{"s1": 1, "s2": 5, "s3": 9}
	cfg.Arbiters = map[netsim.NodeID]bool{"s3": true}
	f := deploy(t, cfg)
	if err := f.c1.Put("k", "v"); err != nil { // gives s2 a newer LastTS than the arbiter
		t.Fatal(err)
	}
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		t.Fatal(err)
	}
	// Give the remaining side ample time to elect — it must not.
	f.eng.Sleep(400 * time.Millisecond)
	for _, id := range []netsim.NodeID{"s2", "s3"} {
		if f.sys.Replica(id).Status().Role == Leader {
			t.Fatalf("%s became leader despite conflicting criteria", id)
		}
	}
	// Client on the majority side cannot write: unavailability.
	if err := f.c2.PutAt("s2", "k", "v2"); err == nil {
		t.Fatal("write should fail while the cluster is leaderless")
	}
}

func TestIsolatedNodeSelfElectsUnderFlawedModes(t *testing.T) {
	// The RabbitMQ #1455 / Ignite behaviour: an isolated node declares
	// the rest dead and forms its own cluster.
	f := deploy(t, testConfig(election.ModeLowestID))
	// Isolate s3 (a follower) completely.
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s3"}, []netsim.NodeID{"s1", "s2", "c1", "c2"}); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		st := f.sys.Replica("s3").Status()
		return st.Role == Leader && st.Leader == "s3"
	})
	if !ok {
		t.Fatal("isolated node never formed its own single-node cluster")
	}
}

func TestQuorumModeMinorityCannotElect(t *testing.T) {
	f := deploy(t, testConfig(election.ModeQuorum))
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s3"}, []netsim.NodeID{"s1", "s2", "c1", "c2"}); err != nil {
		t.Fatal(err)
	}
	f.eng.Sleep(300 * time.Millisecond)
	if f.sys.Replica("s3").Status().Role == Leader {
		t.Fatal("an isolated node must not elect itself under quorum mode")
	}
}

func TestWriteAllFailsWithIsolatedFollower(t *testing.T) {
	cfg := testConfig(election.ModeQuorum)
	cfg.WriteConcern = WriteAll
	f := deploy(t, cfg)
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s3"}, []netsim.NodeID{"s1", "s2", "c1", "c2"}); err != nil {
		t.Fatal(err)
	}
	err := f.c1.PutAt("s1", "k", "v")
	if !IsWriteFailed(err) {
		t.Fatalf("WriteAll with an isolated replica = %v, want write failure", err)
	}
}

func TestWriteAsyncAcknowledgesImmediately(t *testing.T) {
	cfg := testConfig(election.ModeQuorum)
	cfg.WriteConcern = WriteAsync
	f := deploy(t, cfg)
	// Even with both followers cut off, async writes "succeed" — the
	// Redis promise the paper quotes.
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		t.Fatal(err)
	}
	if err := f.c1.PutAt("s1", "k", "v"); err != nil {
		t.Fatalf("async write: %v", err)
	}
}

func TestFollowerReadsWhenEnabled(t *testing.T) {
	cfg := testConfig(election.ModeQuorum)
	cfg.AllowFollowerReads = true
	f := deploy(t, cfg)
	if err := f.c1.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(time.Second, func() bool {
		got, err := f.c2.GetAt("s2", "k")
		return err == nil && got == "v"
	})
	if !ok {
		t.Fatal("follower read never succeeded with AllowFollowerReads")
	}
}

func TestSystemStatusRoles(t *testing.T) {
	f := deploy(t, testConfig(election.ModeQuorum))
	st := f.sys.Status()
	leaders := 0
	for _, s := range st {
		if !s.Up {
			t.Fatal("all replicas should be up")
		}
		if s.Role == "leader" {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want exactly 1", leaders)
	}
	if got := f.sys.Leader(); got != "s1" {
		t.Fatalf("initial leader = %s, want s1", got)
	}
}

func TestLeadersReportsSplitBrain(t *testing.T) {
	f := deploy(t, testConfig(election.ModeLowestID))
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"s1"}, []netsim.NodeID{"s2"}); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		return len(f.sys.Leaders()) == 2
	})
	if !ok {
		t.Fatalf("Leaders() = %v, want a split brain with 2", f.sys.Leaders())
	}
}

func TestCrashedLeaderReplacedAndRecovers(t *testing.T) {
	f := deploy(t, testConfig(election.ModeQuorum))
	if err := f.c1.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	f.eng.Crash("s1")
	id := f.waitLeaderAmong(t, []netsim.NodeID{"s2", "s3"})
	if id == "s1" {
		t.Fatal("crashed node cannot lead")
	}
	if err := f.c2.Put("k", "v2"); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	f.eng.Restart("s1")
	// The restarted node rejoins as a follower and catches up.
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		e, exists := f.sys.Replica("s1").Data()["k"]
		return exists && e.Val == "v2" && f.sys.Replica("s1").Status().Role == Follower
	})
	if !ok {
		t.Fatal("restarted replica never caught up")
	}
}

// TestSimplexLostAcksLeaveUnacknowledgedSurvivingWrite reproduces the
// request-routing failure class (Elasticsearch #9967): a simplex
// partition delivers the leader's replication traffic but drops the
// acknowledgements coming back. The write is reported failed, yet it
// reached every replica — and survives as readable state.
func TestSimplexLostAcksLeaveUnacknowledgedSurvivingWrite(t *testing.T) {
	f := deploy(t, testConfig(election.ModeQuorum))
	// Traffic flows s1 -> {s2,s3}; the reverse direction is dropped,
	// so appends arrive but acks are lost.
	if _, err := f.eng.Simplex(
		[]netsim.NodeID{"s1"}, []netsim.NodeID{"s2", "s3"}); err != nil {
		t.Fatal(err)
	}
	err := f.c1.PutAt("s1", "k", "phantom")
	if !IsWriteFailed(err) {
		t.Fatalf("write = %v, want reported failure (acks lost)", err)
	}
	// Yet both followers applied it.
	ok := f.eng.WaitUntil(time.Second, func() bool {
		e2, ok2 := f.sys.Replica("s2").Data()["k"]
		e3, ok3 := f.sys.Replica("s3").Data()["k"]
		return ok2 && ok3 && e2.Val == "phantom" && e3.Val == "phantom"
	})
	if !ok {
		t.Fatal("the 'failed' write never reached the followers")
	}
	// After healing, the phantom value is readable cluster-wide: a
	// write the client was told failed became durable state.
	if err := f.eng.HealAll(); err != nil {
		t.Fatal(err)
	}
	got := ""
	ok = f.eng.WaitUntil(2*time.Second, func() bool {
		var err error
		got, err = f.c2.Get("k")
		return err == nil
	})
	if !ok || got != "phantom" {
		t.Fatalf("post-heal read = %q ok=%v, want the phantom value", got, ok)
	}
}

func TestWriteLocalConcernIgnoresPartition(t *testing.T) {
	cfg := testConfig(election.ModeQuorum)
	cfg.WriteConcern = WriteLocal
	f := deploy(t, cfg)
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"s1", "c1"}, []netsim.NodeID{"s2", "s3", "c2"}); err != nil {
		t.Fatal(err)
	}
	if err := f.c1.PutAt("s1", "k", "v"); err != nil {
		t.Fatalf("local-concern write should succeed on an isolated leader: %v", err)
	}
}

func TestArbiterStoresNothing(t *testing.T) {
	cfg := testConfig(election.ModeQuorum)
	cfg.Arbiters = map[netsim.NodeID]bool{"s3": true}
	f := deploy(t, cfg)
	if err := f.c1.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(time.Second, func() bool {
		e, exists := f.sys.Replica("s2").Data()["k"]
		return exists && e.Val == "v"
	})
	if !ok {
		t.Fatal("data replica never applied the write")
	}
	if len(f.sys.Replica("s3").Data()) != 0 {
		t.Fatal("arbiter must store nothing")
	}
	st := f.sys.Replica("s3").Status()
	if st.LogLen != 0 {
		t.Fatalf("arbiter log length = %d, want 0", st.LogLen)
	}
}
