package kvstore

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/election"
	"neat/internal/netsim"
	"neat/internal/transport"
)

// Role is a replica's current role.
type Role int

const (
	// Follower replicates from a leader.
	Follower Role = iota
	// Leader accepts writes and drives replication.
	Leader
)

// String returns "leader" or "follower".
func (r Role) String() string {
	if r == Leader {
		return "leader"
	}
	return "follower"
}

// Op is one replicated operation.
type Op struct {
	Seq  int
	Term uint64
	Key  string
	Val  string
	Del  bool
	TS   int64
}

// Entry is the stored state of one key.
type Entry struct {
	Val string
	TS  int64
	Del bool
}

// RPC method names.
const (
	mPut    = "kv.put"
	mGet    = "kv.get"
	mDel    = "kv.del"
	mHB     = "kv.hb"
	mVote   = "kv.vote"
	mAppend = "kv.append"
	mSnap   = "kv.snap"
	mStatus = "kv.status"
)

type hbMsg struct {
	Term    uint64
	Leader  netsim.NodeID
	LogLen  int
	LogTerm uint64
	LastTS  int64
	Prio    int
}

type hbResp struct {
	OK     bool
	LogLen int
}

type voteReq struct{ Cand election.Candidate }

type voteResp struct{ Granted bool }

type appendMsg struct {
	Term   uint64
	Leader netsim.NodeID
	Ops    []Op
}

type appendResp struct{ OK bool }

type putReq struct{ Key, Val string }

type getReq struct{ Key string }

type delReq struct{ Key string }

type snapResp struct {
	Data   map[string]Entry
	Log    []Op
	Term   uint64
	LastTS int64
}

// StatusInfo is the externally visible state of one replica.
type StatusInfo struct {
	ID     netsim.NodeID
	Role   Role
	Term   uint64
	Leader netsim.NodeID
	LogLen int
	LastTS int64
}

// NotLeaderError redirects the client to the current leader (if known).
type NotLeaderError struct{ Leader netsim.NodeID }

// Error implements the error interface.
func (e *NotLeaderError) Error() string {
	if e.Leader == "" {
		return "not leader (no leader known)"
	}
	return fmt.Sprintf("not leader; try %s", e.Leader)
}

// ErrNotFound is returned for reads of missing or deleted keys.
var ErrNotFound = errors.New("kvstore: key not found")

// ErrWriteFailed is returned when the write concern was not met. With
// ApplyBeforeReplicate the leader's local copy retains the value anyway
// — the dirty-read flaw.
var ErrWriteFailed = errors.New("kvstore: write failed to meet write concern")

// ErrNoQuorum is returned by ReadMajority reads when the leader cannot
// confirm a majority.
var ErrNoQuorum = errors.New("kvstore: cannot confirm majority")

// Replica is one member of the replica set.
type Replica struct {
	cfg Config
	id  netsim.NodeID
	ep  *transport.Endpoint
	clk clock.Clock

	mu              sync.Mutex
	role            Role
	term            uint64
	votedTerm       uint64
	votedFor        netsim.NodeID
	leader          netsim.NodeID
	lastLeaderHeard time.Time
	leaseMissed     int
	log             []Op
	data            map[string]Entry
	lastTS          int64
	syncing         bool
	stopped         bool

	// rng drives the election backoff jitter. It is seeded from the
	// replica ID so identical deployments take identical backoffs —
	// the global math/rand source would leak nondeterminism across
	// concurrent campaign rounds.
	rng *rand.Rand

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewReplica creates (but does not start) a replica attached to the
// fabric.
func NewReplica(n *netsim.Network, id netsim.NodeID, cfg Config) *Replica {
	cfg = cfg.withDefaults()
	ep := transport.NewEndpoint(n, id)
	r := &Replica{
		cfg:             cfg,
		id:              id,
		ep:              ep,
		clk:             ep.Clock(),
		data:            make(map[string]Entry),
		lastLeaderHeard: ep.Clock().Now(),
		rng:             rand.New(rand.NewSource(int64(id.Hash()))),
		stopCh:          make(chan struct{}),
	}
	r.ep.DefaultTimeout = cfg.RPCTimeout
	r.ep.Handle(mPut, r.onPut)
	r.ep.Handle(mGet, r.onGet)
	r.ep.Handle(mDel, r.onDel)
	r.ep.Handle(mHB, r.onHeartbeat)
	r.ep.Handle(mVote, r.onVote)
	r.ep.Handle(mAppend, r.onAppend)
	r.ep.Handle(mSnap, r.onSnapshot)
	r.ep.Handle(mStatus, r.onStatus)
	return r
}

// ID returns the replica's node ID.
func (r *Replica) ID() netsim.NodeID { return r.id }

// Start launches the replica's tick loop. The ticker is created here,
// on the caller, so creation (and same-instant firing) order follows
// the deterministic deployment order.
func (r *Replica) Start() {
	r.wg.Add(1)
	t := r.clk.NewTicker(r.cfg.HeartbeatInterval)
	go r.tickLoop(t)
}

// Stop halts the replica and detaches it from the fabric.
func (r *Replica) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	close(r.stopCh)
	r.wg.Wait()
	r.ep.Close()
}

// Status returns a snapshot of the replica's externally visible state.
func (r *Replica) Status() StatusInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return StatusInfo{
		ID: r.id, Role: r.role, Term: r.term, Leader: r.leader,
		LogLen: len(r.log), LastTS: r.lastTS,
	}
}

// Data returns a copy of the replica's current store, for verification.
func (r *Replica) Data() map[string]Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]Entry, len(r.data))
	for k, v := range r.data {
		out[k] = v
	}
	return out
}

// BecomeLeader forces leadership (used to establish a deterministic
// initial leader in tests, the way deployment scripts seed a primary).
func (r *Replica) BecomeLeader() {
	r.mu.Lock()
	r.role = Leader
	r.leader = r.id
	r.term++
	r.mu.Unlock()
	r.broadcastHeartbeats()
}

func (r *Replica) prio() int { return r.cfg.Priorities[r.id] }

func (r *Replica) lastLogTermLocked() uint64 {
	if len(r.log) == 0 {
		return 0
	}
	return r.log[len(r.log)-1].Term
}

func (r *Replica) candidateLocked() election.Candidate {
	return election.Candidate{
		ID: r.id, Term: r.term, LogLen: len(r.log), LogTerm: r.lastLogTermLocked(),
		LastTS: r.lastTS, Priority: r.cfg.Priorities[r.id],
	}
}

func (r *Replica) peers() []netsim.NodeID {
	out := make([]netsim.NodeID, 0, len(r.cfg.Replicas)-1)
	for _, id := range r.cfg.Replicas {
		if id != r.id {
			out = append(out, id)
		}
	}
	return out
}

func (r *Replica) nextTSLocked() int64 {
	ts := r.clk.Now().UnixNano()
	if ts <= r.lastTS {
		ts = r.lastTS + 1
	}
	r.lastTS = ts
	return ts
}

func (r *Replica) applyLocked(op Op) {
	r.data[op.Key] = Entry{Val: op.Val, TS: op.TS, Del: op.Del}
	if op.TS > r.lastTS {
		r.lastTS = op.TS
	}
}

// --- tick loop: heartbeats (leader) and election timeout (follower) ---

func (r *Replica) tickLoop(t clock.Ticker) {
	defer r.wg.Done()
	defer t.Stop()
	clock.TickLoop(r.clk, t, r.stopCh, func() {
		r.mu.Lock()
		role := r.role
		silent := r.clk.Now().Sub(r.lastLeaderHeard)
		r.mu.Unlock()
		if role == Leader {
			r.broadcastHeartbeats()
		} else if silent > r.cfg.ElectionTimeout {
			r.campaign()
		}
	})
}

func (r *Replica) broadcastHeartbeats() {
	r.mu.Lock()
	if r.role != Leader {
		r.mu.Unlock()
		return
	}
	msg := hbMsg{Term: r.term, Leader: r.id, LogLen: len(r.log), LogTerm: r.lastLogTermLocked(), LastTS: r.lastTS, Prio: r.prio()}
	peers := r.peers()
	r.mu.Unlock()

	acks := 1 // self
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range peers {
		p := p
		wg.Add(1)
		clock.Go(r.clk, func() {
			defer wg.Done()
			//neat:allow ambiguity -- heartbeat is idempotent; a timed-out beat just counts as no ack
			resp, err := r.ep.Call(p, mHB, msg, r.cfg.HeartbeatInterval)
			if err != nil {
				return
			}
			if hr, ok := resp.(hbResp); ok && hr.OK {
				mu.Lock()
				acks++
				mu.Unlock()
			}
		})
	}
	clock.Idle(r.clk, wg.Wait)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.role != Leader {
		return
	}
	if acks >= r.cfg.Majority() {
		r.leaseMissed = 0
		return
	}
	r.leaseMissed++
	if r.cfg.StepDownOnLostMajority && r.leaseMissed >= r.cfg.LeaseMisses {
		// The deposed leader finally notices it lost the majority.
		// Everything it served between the partition and this moment is
		// the overlap window of Table 4.
		r.role = Follower
		r.leader = ""
		r.leaseMissed = 0
		r.lastLeaderHeard = r.clk.Now() // full timeout before campaigning
	}
}

func (r *Replica) campaign() {
	r.mu.Lock()
	if r.role == Leader || r.stopped {
		r.mu.Unlock()
		return
	}
	r.term++
	startTerm := r.term
	r.votedTerm = r.term
	r.votedFor = r.id
	r.leader = "" // campaigning implies we consider the old leader gone
	// Randomized election backoff: restart the election timer with
	// jitter so repeated failed campaigns do not livelock the cluster
	// by deposing every new leader before it can announce itself.
	r.lastLeaderHeard = r.clk.Now().Add(time.Duration(r.rng.Int63n(int64(r.cfg.ElectionTimeout))))
	cand := r.candidateLocked()
	peers := r.peers()
	mode := r.cfg.ElectionMode
	r.mu.Unlock()

	grants := 1 // self
	responses := 1
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range peers {
		p := p
		wg.Add(1)
		clock.Go(r.clk, func() {
			defer wg.Done()
			//neat:allow ambiguity -- votes are term-guarded and idempotent; a lost grant is a missing ack
			resp, err := r.ep.Call(p, mVote, voteReq{Cand: cand}, r.cfg.RPCTimeout)
			if err != nil {
				return
			}
			vr, ok := resp.(voteResp)
			mu.Lock()
			responses++
			if ok && vr.Granted {
				grants++
			}
			mu.Unlock()
		})
	}
	clock.Idle(r.clk, wg.Wait)

	won := false
	if mode.RequiresMajority() {
		won = grants >= r.cfg.Majority()
	} else {
		// Flawed criteria elect within the reachable set: every node
		// that answered must have granted. An isolated node elects
		// itself — the new-independent-cluster behaviour of RabbitMQ
		// issue #1455 and Apache Ignite.
		won = grants == responses
	}
	if !won {
		return
	}
	r.mu.Lock()
	// Abort if the world changed while we were collecting votes.
	if r.stopped || r.role == Leader || r.term != startTerm ||
		(r.leader != "" && r.clk.Now().Sub(r.lastLeaderHeard) < r.cfg.ElectionTimeout) {
		r.mu.Unlock()
		return
	}
	r.role = Leader
	r.leader = r.id
	r.leaseMissed = 0
	r.mu.Unlock()
	r.broadcastHeartbeats()
}

// --- RPC handlers ---

func (r *Replica) onHeartbeat(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(hbMsg)
	if !ok {
		return nil, errors.New("bad heartbeat")
	}
	r.mu.Lock()
	if r.role == Leader {
		// Two leaders have met: the leader-overlap or post-heal
		// moment. Consolidate by the configured criterion; the loser
		// truncates its state to the winner's.
		other := election.Candidate{
			ID: msg.Leader, Term: msg.Term, LogLen: msg.LogLen,
			LastTS: msg.LastTS, Priority: msg.Prio,
		}
		self := r.candidateLocked()
		if election.Beats(r.cfg.ConsolidationMode, other, self) {
			r.role = Follower
			r.leader = msg.Leader
			if msg.Term > r.term {
				r.term = msg.Term
			}
			r.lastLeaderHeard = r.clk.Now()
			if !r.syncing && !r.stopped {
				r.syncing = true
				r.wg.Add(1)
				clock.Go(r.clk, func() {
					defer r.wg.Done()
					r.pullSnapshot(msg.Leader)
				})
			}
			r.mu.Unlock()
			return hbResp{OK: true}, nil
		}
		r.mu.Unlock()
		return hbResp{OK: false}, nil
	}

	accept := msg.Term >= r.term || !r.cfg.ElectionMode.RequiresMajority()
	if accept {
		if msg.Term > r.term {
			r.term = msg.Term
		}
		r.leader = msg.Leader
		r.lastLeaderHeard = r.clk.Now()
		behind := msg.LogLen > len(r.log) || msg.LogTerm > r.lastLogTermLocked()
		if behind && !r.syncing && !r.stopped && !r.cfg.Arbiters[r.id] {
			// We are behind this leader — either fewer entries, or our
			// tail was written in a stale term and must be truncated.
			r.syncing = true
			r.wg.Add(1)
			clock.Go(r.clk, func() {
				defer r.wg.Done()
				r.pullSnapshot(msg.Leader)
			})
		}
	}
	logLen := len(r.log)
	r.mu.Unlock()
	return hbResp{OK: accept, LogLen: logLen}, nil
}

func (r *Replica) onVote(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(voteReq)
	if !ok {
		return nil, errors.New("bad vote request")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	mode := r.cfg.ElectionMode
	if mode.RequiresMajority() && req.Cand.Term > r.term {
		r.term = req.Cand.Term
		r.votedFor = ""
		if r.role == Leader {
			r.role = Follower
			r.leader = ""
		}
	}
	votedFor := netsim.NodeID("")
	if r.votedTerm == req.Cand.Term {
		votedFor = r.votedFor
	}
	voter := election.Voter{
		Self:        r.candidateLocked(),
		CurrentTerm: r.term,
		VotedFor:    votedFor,
		LeaderAlive: r.leader != "" && r.clk.Now().Sub(r.lastLeaderHeard) < r.cfg.ElectionTimeout,
	}
	granted := election.GrantVote(mode, voter, req.Cand)
	if granted {
		r.votedTerm = req.Cand.Term
		r.votedFor = req.Cand.ID
	}
	return voteResp{Granted: granted}, nil
}

func (r *Replica) onAppend(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(appendMsg)
	if !ok {
		return nil, errors.New("bad append")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.ElectionMode.RequiresMajority() && msg.Term < r.term {
		return appendResp{OK: false}, nil
	}
	if msg.Term > r.term {
		r.term = msg.Term
		if r.role == Leader {
			r.role = Follower
		}
	}
	r.leader = msg.Leader
	r.lastLeaderHeard = r.clk.Now()
	if r.cfg.Arbiters[r.id] {
		// Arbiters acknowledge without storing: they exist only to
		// vote, which is what makes the conflicting-criteria election
		// deadlock possible (MongoDB SERVER-14885).
		return appendResp{OK: true}, nil
	}
	for _, op := range msg.Ops {
		if op.Seq != len(r.log)+1 {
			// Log gap: we missed operations; a snapshot pull will
			// reconcile us.
			if !r.syncing && !r.stopped {
				r.syncing = true
				r.wg.Add(1)
				clock.Go(r.clk, func() {
					defer r.wg.Done()
					r.pullSnapshot(msg.Leader)
				})
			}
			return appendResp{OK: false}, nil
		}
		r.log = append(r.log, op)
		r.applyLocked(op)
	}
	return appendResp{OK: true}, nil
}

func (r *Replica) onSnapshot(netsim.NodeID, any) (any, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	data := make(map[string]Entry, len(r.data))
	for k, v := range r.data {
		data[k] = v
	}
	log := append([]Op(nil), r.log...)
	return snapResp{Data: data, Log: log, Term: r.term, LastTS: r.lastTS}, nil
}

// pullSnapshot replaces the local state with the given peer's. This is
// the consolidation step: "the leader trusts that its data set is
// complete and all replicas should update/trim their data sets to match
// the leader copy". Divergent local writes are discarded (data loss)
// and keys the winner never saw deleted come back (reappearance).
func (r *Replica) pullSnapshot(leader netsim.NodeID) {
	//neat:allow ambiguity -- read-only snapshot pull; an aborted sync retries on the next cycle
	resp, err := r.ep.Call(leader, mSnap, nil, r.cfg.RPCTimeout)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.syncing = false
	if err != nil {
		return
	}
	snap, ok := resp.(snapResp)
	if !ok {
		return
	}
	r.data = make(map[string]Entry, len(snap.Data))
	for k, v := range snap.Data {
		r.data[k] = v
	}
	r.log = append([]Op(nil), snap.Log...)
	if snap.Term > r.term {
		r.term = snap.Term
	}
	r.lastTS = snap.LastTS
}

// --- client-facing handlers ---

func (r *Replica) onPut(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(putReq)
	if !ok {
		return nil, errors.New("bad put")
	}
	return nil, r.propose(Op{Key: req.Key, Val: req.Val})
}

func (r *Replica) onDel(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(delReq)
	if !ok {
		return nil, errors.New("bad delete")
	}
	return nil, r.propose(Op{Key: req.Key, Del: true})
}

func (r *Replica) propose(op Op) error {
	r.mu.Lock()
	if r.role != Leader {
		leader := r.leader
		r.mu.Unlock()
		return &NotLeaderError{Leader: leader}
	}
	op.Seq = len(r.log) + 1
	op.Term = r.term
	op.TS = r.nextTSLocked()
	r.log = append(r.log, op)
	if r.cfg.ApplyBeforeReplicate {
		r.applyLocked(op)
	}
	msg := appendMsg{Term: r.term, Leader: r.id, Ops: []Op{op}}
	peers := r.peers()
	r.mu.Unlock()

	if r.cfg.WriteConcern == WriteAsync {
		for _, p := range peers {
			_ = r.ep.Notify(p, mAppend, msg)
		}
		r.applyIfDeferred(op)
		return nil
	}
	if r.cfg.WriteConcern == WriteLocal {
		r.applyIfDeferred(op)
		return nil
	}

	acks := 1
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range peers {
		p := p
		wg.Add(1)
		clock.Go(r.clk, func() {
			defer wg.Done()
			//neat:allow ambiguity -- modeled replication counts only acked appends; the ambiguous window is the studied gap
			resp, err := r.ep.Call(p, mAppend, msg, r.cfg.RPCTimeout)
			if err != nil {
				return
			}
			if ar, ok := resp.(appendResp); ok && ar.OK {
				mu.Lock()
				acks++
				mu.Unlock()
			}
		})
	}
	clock.Idle(r.clk, wg.Wait)

	need := r.cfg.Majority()
	if r.cfg.WriteConcern == WriteAll {
		need = len(r.cfg.Replicas)
	}
	if acks < need {
		// The write failed — but with ApplyBeforeReplicate the local
		// copy already holds the value, and the op stays in the log.
		// A later local read returns it: Figure 2's dirty read.
		return fmt.Errorf("%w: %d of %d acks (need %d)", ErrWriteFailed, acks, len(r.cfg.Replicas), need)
	}
	r.applyIfDeferred(op)
	return nil
}

func (r *Replica) applyIfDeferred(op Op) {
	if r.cfg.ApplyBeforeReplicate {
		return
	}
	r.mu.Lock()
	r.applyLocked(op)
	r.mu.Unlock()
}

func (r *Replica) onGet(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(getReq)
	if !ok {
		return nil, errors.New("bad get")
	}
	r.mu.Lock()
	role := r.role
	leader := r.leader
	entry, exists := r.data[req.Key]
	r.mu.Unlock()

	if role != Leader && !r.cfg.AllowFollowerReads {
		return nil, &NotLeaderError{Leader: leader}
	}
	if role == Leader && r.cfg.ReadConcern == ReadMajority {
		if !r.confirmMajority() {
			return nil, ErrNoQuorum
		}
		// Re-read after confirmation: consolidation may have run.
		r.mu.Lock()
		entry, exists = r.data[req.Key]
		stillLeader := r.role == Leader
		r.mu.Unlock()
		if !stillLeader {
			return nil, &NotLeaderError{Leader: leader}
		}
	}
	if !exists || entry.Del {
		return nil, ErrNotFound
	}
	return entry.Val, nil
}

// confirmMajority performs a synchronous heartbeat round and reports
// whether a majority acknowledged. It is the read-barrier that makes
// ReadMajority immune to the overlap window.
func (r *Replica) confirmMajority() bool {
	r.mu.Lock()
	msg := hbMsg{Term: r.term, Leader: r.id, LogLen: len(r.log), LogTerm: r.lastLogTermLocked(), LastTS: r.lastTS, Prio: r.prio()}
	peers := r.peers()
	maj := r.cfg.Majority()
	r.mu.Unlock()
	acks := 1
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range peers {
		p := p
		wg.Add(1)
		clock.Go(r.clk, func() {
			defer wg.Done()
			//neat:allow ambiguity -- heartbeat is idempotent; a timed-out beat just counts as no ack
			resp, err := r.ep.Call(p, mHB, msg, r.cfg.RPCTimeout)
			if err != nil {
				return
			}
			if hr, ok := resp.(hbResp); ok && hr.OK {
				mu.Lock()
				acks++
				mu.Unlock()
			}
		})
	}
	clock.Idle(r.clk, wg.Wait)
	return acks >= maj
}

func (r *Replica) onStatus(netsim.NodeID, any) (any, error) {
	return r.Status(), nil
}
