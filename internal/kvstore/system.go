package kvstore

import (
	"time"

	"neat/internal/core"
	"neat/internal/netsim"
)

// System bundles a replica set into NEAT's ISystem lifecycle interface.
type System struct {
	cfg      Config
	net      *netsim.Network
	replicas map[netsim.NodeID]*Replica
	started  bool
}

// NewSystem creates the replica set on the fabric, unstarted.
func NewSystem(n *netsim.Network, cfg Config) *System {
	cfg = cfg.withDefaults()
	s := &System{cfg: cfg, net: n, replicas: make(map[netsim.NodeID]*Replica)}
	for _, id := range cfg.Replicas {
		s.replicas[id] = NewReplica(n, id, cfg)
	}
	return s
}

// Name implements core.ISystem.
func (s *System) Name() string { return "kvstore" }

// Start implements core.ISystem: it boots every replica and seeds the
// first replica as the initial leader (deterministic deployments do
// this so the system is usable without waiting for a first election).
func (s *System) Start() error {
	if s.started {
		return nil
	}
	// Boot in configured order: map iteration order would make the
	// ticker registration (and thus virtual-time firing) order differ
	// between otherwise identical runs.
	for _, id := range s.cfg.Replicas {
		s.replicas[id].Start()
	}
	if len(s.cfg.Replicas) > 0 {
		s.replicas[s.cfg.Replicas[0]].BecomeLeader()
	}
	s.started = true
	return nil
}

// Stop implements core.ISystem.
func (s *System) Stop() error {
	for _, r := range s.replicas {
		r.Stop()
	}
	return nil
}

// Status implements core.ISystem.
func (s *System) Status() map[netsim.NodeID]core.NodeStatus {
	out := make(map[netsim.NodeID]core.NodeStatus, len(s.replicas))
	for id, r := range s.replicas {
		st := r.Status()
		out[id] = core.NodeStatus{Up: s.net.IsUp(id), Role: st.Role.String()}
	}
	return out
}

// Replica returns the replica running on the given node.
func (s *System) Replica(id netsim.NodeID) *Replica { return s.replicas[id] }

// Leader returns a node that currently believes it is leader, or ""
// if none does. With a split brain more than one node qualifies; this
// returns the first in replica order.
func (s *System) Leader() netsim.NodeID {
	for _, id := range s.cfg.Replicas {
		if s.replicas[id].Status().Role == Leader {
			return id
		}
	}
	return ""
}

// Leaders returns every node that currently believes it is leader —
// more than one during a split brain.
func (s *System) Leaders() []netsim.NodeID {
	var out []netsim.NodeID
	for _, id := range s.cfg.Replicas {
		if s.replicas[id].Status().Role == Leader {
			out = append(out, id)
		}
	}
	return out
}

// WaitForLeaderAmong blocks until one of the given nodes claims
// leadership, returning it, or "" on timeout. The wait is clock-driven:
// under a virtual clock each poll interval is a simulated-time advance,
// so the loop is instant in wall-clock terms instead of busy-waiting
// through real milliseconds.
func (s *System) WaitForLeaderAmong(nodes []netsim.NodeID, timeout time.Duration) netsim.NodeID {
	clk := s.net.Clock()
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		for _, id := range nodes {
			if r, ok := s.replicas[id]; ok && r.Status().Role == Leader {
				return id
			}
		}
		clk.Sleep(time.Millisecond)
	}
	return ""
}
