// Package kvstore implements a leader-based replicated key-value store
// in the mould of the studied databases (MongoDB, VoltDB, RethinkDB,
// Elasticsearch): a leader elected among replicas accepts writes,
// replicates them to followers, and serves reads from its local copy.
//
// Every design decision the paper identifies as a flaw is an explicit
// configuration knob rather than a hack, so tests can reproduce each
// failure class and, by flipping the knob, demonstrate the fix:
//
//   - ElectionMode selects the (possibly flawed) election criterion of
//     Table 4;
//   - ApplyBeforeReplicate makes the leader update its local copy before
//     the replication round, producing dirty reads (Figure 2);
//   - WriteConcern/ReadConcern trade durability and staleness exactly as
//     the studied systems' settings do;
//   - on heal, conflicting leaders consolidate by the election criterion:
//     the losing side truncates its state to match the winner, which is
//     how acknowledged writes get lost and deleted data reappears.
package kvstore

import (
	"time"

	"neat/internal/election"
	"neat/internal/netsim"
)

// WriteConcern is how many replicas must acknowledge a write before it
// is reported successful.
type WriteConcern int

const (
	// WriteMajority requires acknowledgements from a majority of the
	// replica set (counting the leader).
	WriteMajority WriteConcern = iota
	// WriteAll requires every replica to acknowledge.
	WriteAll
	// WriteLocal applies locally only and reports success (the most
	// failure-prone setting).
	WriteLocal
	// WriteAsync applies locally, replicates in the background, and
	// reports success immediately (Redis-style asynchronous
	// replication, which "promises data reliability" it cannot keep).
	WriteAsync
)

// String returns the concern name.
func (w WriteConcern) String() string {
	switch w {
	case WriteAll:
		return "all"
	case WriteLocal:
		return "local"
	case WriteAsync:
		return "async"
	default:
		return "majority"
	}
}

// ReadConcern is how a read is validated before returning.
type ReadConcern int

const (
	// ReadLocal serves straight from the contacted node's local copy.
	// During a leader-overlap window this returns stale or dirty data.
	ReadLocal ReadConcern = iota
	// ReadMajority makes the leader confirm it still holds a majority
	// before answering, closing the stale/dirty read window.
	ReadMajority
)

// String returns the concern name.
func (r ReadConcern) String() string {
	if r == ReadMajority {
		return "majority"
	}
	return "local"
}

// Config configures a replica set.
type Config struct {
	// Replicas is the static membership, in ID order.
	Replicas []netsim.NodeID
	// ElectionMode selects the election criterion (Table 4 taxonomy).
	ElectionMode election.Mode
	// ConsolidationMode selects how two leaders that meet after a heal
	// decide who survives. Zero value means "same as ElectionMode",
	// which is what the studied systems do.
	ConsolidationMode election.Mode
	// ConsolidationSet makes ConsolidationMode authoritative even when
	// it equals the zero value.
	ConsolidationSet bool

	WriteConcern WriteConcern
	ReadConcern  ReadConcern

	// ApplyBeforeReplicate updates the leader's local store before the
	// replication round (the VoltDB/MongoDB behaviour behind Figure 2's
	// dirty read). When false, the leader applies only after the write
	// concern is met.
	ApplyBeforeReplicate bool
	// AllowFollowerReads lets non-leader replicas serve ReadLocal
	// reads.
	AllowFollowerReads bool
	// StepDownOnLostMajority makes a leader that cannot reach a
	// majority for LeaseMisses heartbeat rounds demote itself. The
	// studied systems all do this — the failure window is the time it
	// takes (the overlap of Table 4).
	StepDownOnLostMajority bool

	// HeartbeatInterval is the leader heartbeat period.
	HeartbeatInterval time.Duration
	// ElectionTimeout is how long a follower waits without leader
	// heartbeats before campaigning.
	ElectionTimeout time.Duration
	// LeaseMisses is how many consecutive heartbeat rounds without a
	// majority of acks a leader tolerates before stepping down.
	LeaseMisses int
	// RPCTimeout bounds one replication or vote round trip.
	RPCTimeout time.Duration

	// Priorities assigns election priorities for ModePriority.
	Priorities map[netsim.NodeID]int
	// Arbiters marks replicas that vote in elections but store no
	// data (MongoDB's arbiter role). An arbiter acknowledges appends
	// without applying them, so its log stays empty and its election
	// attributes never advance.
	Arbiters map[netsim.NodeID]bool
}

// withDefaults fills zero fields with test-friendly values.
func (c Config) withDefaults() Config {
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 10 * time.Millisecond
	}
	if c.ElectionTimeout == 0 {
		c.ElectionTimeout = 4 * c.HeartbeatInterval
	}
	if c.LeaseMisses == 0 {
		c.LeaseMisses = 3
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 5 * c.HeartbeatInterval
	}
	if !c.ConsolidationSet {
		c.ConsolidationMode = c.ElectionMode
	}
	return c
}

// Majority returns the majority threshold of the replica set.
func (c Config) Majority() int { return len(c.Replicas)/2 + 1 }
