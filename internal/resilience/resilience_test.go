package resilience

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"neat/internal/clock"
)

// TestBackoffDecorrelatedJitterBounds: every delay stays within
// [Base, Cap], and the sequence is capped once it grows there.
func TestBackoffDecorrelatedJitterBounds(t *testing.T) {
	pol := Policy{Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond}
	bo := NewBackoff(pol, rand.New(rand.NewSource(7)))
	prev := time.Duration(0)
	for i := 0; i < 50; i++ {
		d := bo.Next()
		if d < pol.Base || d > pol.Cap {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, pol.Base, pol.Cap)
		}
		if i > 0 && prev < pol.Cap {
			hi := 3 * prev
			if hi > pol.Cap {
				hi = pol.Cap
			}
			if d > hi {
				t.Fatalf("delay %d = %v exceeds decorrelated bound 3*prev=%v (cap %v)", i, d, 3*prev, pol.Cap)
			}
		}
		prev = d
	}
}

// TestBackoffDeterministic: equal seeds produce equal delay sequences
// — the property that keeps retry timing inside the round's
// deterministic replay.
func TestBackoffDeterministic(t *testing.T) {
	pol := Policy{Base: time.Millisecond, Cap: 32 * time.Millisecond}
	a := NewBackoff(pol, rand.New(rand.NewSource(42)))
	b := NewBackoff(pol, rand.New(rand.NewSource(42)))
	for i := 0; i < 100; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("sequences diverged at %d: %v vs %v", i, da, db)
		}
	}
}

// TestDoRetriesUntilSuccess: retryable failures back off and retry;
// the virtual clock advances by exactly the backoff sequence, at CPU
// speed.
func TestDoRetriesUntilSuccess(t *testing.T) {
	sim := clock.NewSim()
	defer sim.Stop()
	start := sim.Now()
	calls := 0
	res := Do(sim, rand.New(rand.NewSource(1)),
		Policy{Base: 2 * time.Millisecond, Cap: 10 * time.Millisecond, MaxAttempts: 10},
		nil,
		func(attempt int) error {
			if attempt != calls {
				t.Fatalf("attempt %d delivered as %d", calls, attempt)
			}
			calls++
			if calls < 4 {
				return errors.New("transient")
			}
			return nil
		})
	if res.Err != nil || res.Attempts != 4 {
		t.Fatalf("got attempts=%d err=%v, want 4 attempts and success", res.Attempts, res.Err)
	}
	if took := sim.Now().Sub(start); took <= 0 || took > 30*time.Millisecond {
		t.Fatalf("virtual time consumed %v, want three backoffs within (0, 30ms]", took)
	}
}

// TestDoDeterministicUnderSim: same seed, same failing callable →
// same attempt count and same virtual-time consumption.
func TestDoDeterministicUnderSim(t *testing.T) {
	run := func() (int, time.Duration) {
		sim := clock.NewSim()
		defer sim.Stop()
		start := sim.Now()
		res := Do(sim, rand.New(rand.NewSource(9)),
			Policy{Base: time.Millisecond, Cap: 8 * time.Millisecond, MaxAttempts: 7},
			nil,
			func(int) error { return errors.New("always") })
		return res.Attempts, sim.Now().Sub(start)
	}
	a1, t1 := run()
	a2, t2 := run()
	if a1 != a2 || t1 != t2 {
		t.Fatalf("replays diverged: (%d, %v) vs (%d, %v)", a1, t1, a2, t2)
	}
	if a1 != 7 {
		t.Fatalf("got %d attempts, want MaxAttempts=7", a1)
	}
}

// TestDoClassification: Fatal stops immediately; Ambiguous stops
// unless the policy opts in; Retryable keeps going.
func TestDoClassification(t *testing.T) {
	sim := clock.NewSim()
	defer sim.Stop()
	fatal := errors.New("fatal")
	ambig := errors.New("maybe")
	classify := func(err error) Class {
		switch err {
		case fatal:
			return Fatal
		case ambig:
			return Ambiguous
		}
		return Retryable
	}
	pol := Policy{Base: time.Millisecond, MaxAttempts: 5}

	if res := Do(sim, rand.New(rand.NewSource(1)), pol, classify, func(int) error { return fatal }); res.Attempts != 1 || res.Class != Fatal {
		t.Fatalf("fatal: got attempts=%d class=%v", res.Attempts, res.Class)
	}
	if res := Do(sim, rand.New(rand.NewSource(1)), pol, classify, func(int) error { return ambig }); res.Attempts != 1 || res.Class != Ambiguous {
		t.Fatalf("ambiguous without opt-in: got attempts=%d class=%v", res.Attempts, res.Class)
	}
	pol.RetryAmbiguous = true
	if res := Do(sim, rand.New(rand.NewSource(1)), pol, classify, func(int) error { return ambig }); res.Attempts != 5 {
		t.Fatalf("ambiguous with opt-in: got attempts=%d, want 5", res.Attempts)
	}
}

// TestDoBudget: the deadline budget bounds total virtual time — a
// backoff that would overrun it is not taken.
func TestDoBudget(t *testing.T) {
	sim := clock.NewSim()
	defer sim.Stop()
	start := sim.Now()
	res := Do(sim, rand.New(rand.NewSource(3)),
		Policy{Base: 4 * time.Millisecond, Cap: 8 * time.Millisecond, Budget: 20 * time.Millisecond},
		nil,
		func(int) error { return errors.New("always") })
	if res.Err == nil {
		t.Fatal("want failure")
	}
	if took := sim.Now().Sub(start); took >= 20*time.Millisecond {
		t.Fatalf("budgeted operation consumed %v, want < 20ms", took)
	}
	if res.Attempts < 2 {
		t.Fatalf("got %d attempts, want at least one retry inside the budget", res.Attempts)
	}
}

// TestDoZeroPolicySingleAttempt: the zero policy means exactly one
// attempt — adopting the layer must not change a client that never
// retried.
func TestDoZeroPolicySingleAttempt(t *testing.T) {
	sim := clock.NewSim()
	defer sim.Stop()
	res := Do(sim, rand.New(rand.NewSource(1)), Policy{}, nil, func(int) error { return errors.New("no") })
	if res.Attempts != 1 {
		t.Fatalf("zero policy ran %d attempts, want 1", res.Attempts)
	}
}

// TestKeySourceStableAcrossRetries: keys are deterministic per client
// and reused verbatim by every retry of the same logical operation.
func TestKeySourceStableAcrossRetries(t *testing.T) {
	ks := NewKeySource("c1")
	k1 := ks.Next()
	k2 := ks.Next()
	if k1 != "c1-1" || k2 != "c1-2" {
		t.Fatalf("got %q, %q", k1, k2)
	}
	sim := clock.NewSim()
	defer sim.Stop()
	key := ks.Next()
	seen := map[string]int{}
	Do(sim, rand.New(rand.NewSource(1)), Policy{Base: time.Millisecond, MaxAttempts: 3}, nil,
		func(int) error { seen[key]++; return errors.New("retry") })
	if len(seen) != 1 || seen[key] != 3 {
		t.Fatalf("retries used keys %v, want the single key %q on all 3 attempts", seen, key)
	}
}
