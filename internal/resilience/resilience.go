// Package resilience is the shared client retry/backoff layer of the
// campaign engine. The source paper traces many partition-induced
// failures to ad-hoc client timeout and retry handling — every client
// rolling its own sweep loop, its own sleep constants, and its own
// notion of which errors are worth retrying. This package centralizes
// that policy: exponential backoff with decorrelated jitter, a total
// deadline budget, explicit Retryable/Fatal/Ambiguous error
// classification, and deterministic idempotency keys so checkers can
// confirm that a retried operation never double-applies.
//
// Everything runs on a clock.Clock and a caller-seeded *rand.Rand, so
// retry timing is part of the round's deterministic virtual-time
// execution: identical seeds replay identical backoff sequences.
package resilience

import (
	"fmt"
	"math/rand"
	"time"

	"neat/internal/clock"
)

// Class classifies one failed attempt.
type Class uint8

const (
	// Retryable: the attempt definitively did not take effect (a
	// refusal, a routing miss); trying again is safe for any operation.
	Retryable Class = iota
	// Fatal: retrying cannot help (a semantic rejection, a permanent
	// error); the caller should surface the error immediately.
	Fatal
	// Ambiguous: the attempt may have taken effect with only the reply
	// lost — the paper's silent-success window. Retrying is only safe
	// for idempotent operations; Policy.RetryAmbiguous opts in.
	Ambiguous
)

// String renders the class for logs.
func (c Class) String() string {
	switch c {
	case Retryable:
		return "retryable"
	case Fatal:
		return "fatal"
	case Ambiguous:
		return "ambiguous"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Classifier maps one attempt's error to a Class. A nil Classifier
// treats every error as Retryable.
type Classifier func(error) Class

// Policy bounds one retried operation.
type Policy struct {
	// Base is the first backoff delay (default 2ms).
	Base time.Duration
	// Cap bounds any single backoff delay (default 16*Base).
	Cap time.Duration
	// MaxAttempts bounds how many times the operation runs; 0 means
	// attempts are bounded only by Budget (and if both are zero, a
	// single attempt).
	MaxAttempts int
	// Budget is the total time (on the operation's clock) the retried
	// operation may consume, measured from the first attempt's start; a
	// backoff that would overrun it is not taken. 0 means unbounded.
	Budget time.Duration
	// RetryAmbiguous also retries attempts classified Ambiguous. Safe
	// only for idempotent operations — rereads, or writes carrying an
	// idempotency key (or a value that is its own key).
	RetryAmbiguous bool
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 2 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 16 * p.Base
	}
	if p.MaxAttempts <= 0 && p.Budget <= 0 {
		p.MaxAttempts = 1
	}
	return p
}

// Backoff produces the policy's delay sequence: decorrelated jitter
// (the AWS variant) — each delay is drawn uniformly from
// [Base, prev*3], capped at Cap. Compared to plain exponential
// backoff this desynchronizes retry storms from many clients while
// still growing the expected delay geometrically.
type Backoff struct {
	pol  Policy
	rng  *rand.Rand
	prev time.Duration
}

// NewBackoff starts a delay sequence. rng must not be nil; the caller
// seeds it, which is what makes retry timing deterministic per round.
func NewBackoff(pol Policy, rng *rand.Rand) *Backoff {
	return &Backoff{pol: pol.withDefaults(), rng: rng}
}

// Next returns the next backoff delay.
func (b *Backoff) Next() time.Duration {
	if b.prev <= 0 {
		b.prev = b.pol.Base
		return b.prev
	}
	hi := 3 * b.prev
	if hi > b.pol.Cap {
		hi = b.pol.Cap
	}
	d := b.pol.Base
	if span := int64(hi - b.pol.Base); span > 0 {
		d += time.Duration(b.rng.Int63n(span + 1))
	}
	b.prev = d
	return d
}

// Result is what one retried operation came to.
type Result struct {
	// Attempts is how many times the operation ran (>= 1).
	Attempts int
	// Err is the final attempt's error (nil on success).
	Err error
	// Class is the final attempt's classification (meaningful only when
	// Err != nil).
	Class Class
}

// Do runs fn under the policy: attempts are classified, retryable
// failures back off with decorrelated jitter on clk, and the loop
// stops on success, a Fatal (or non-retried Ambiguous) class, attempt
// exhaustion, or a backoff that would overrun the budget. fn receives
// the zero-based attempt number, so callers can stamp idempotency
// keys or record per-attempt operations.
func Do(clk clock.Clock, rng *rand.Rand, pol Policy, classify Classifier, fn func(attempt int) error) Result {
	pol = pol.withDefaults()
	bo := NewBackoff(pol, rng)
	start := clk.Now()
	res := Result{}
	for attempt := 0; ; attempt++ {
		res.Attempts = attempt + 1
		res.Err = fn(attempt)
		if res.Err == nil {
			return res
		}
		res.Class = Retryable
		if classify != nil {
			res.Class = classify(res.Err)
		}
		if res.Class == Fatal || (res.Class == Ambiguous && !pol.RetryAmbiguous) {
			return res
		}
		if pol.MaxAttempts > 0 && attempt+1 >= pol.MaxAttempts {
			return res
		}
		d := bo.Next()
		if pol.Budget > 0 && clk.Now().Sub(start)+d >= pol.Budget {
			return res
		}
		clk.Sleep(d)
	}
}

// KeySource mints deterministic idempotency keys for one client: a
// stable "client-seq" string per logical operation, reused verbatim
// across that operation's retries. Servers (or checkers) that see the
// same key twice know they are looking at a retry, not a new
// operation — which is what lets a history checker prove a retried
// write never double-applied.
type KeySource struct {
	client string
	seq    int
}

// NewKeySource starts a key sequence for the named client.
func NewKeySource(client string) *KeySource { return &KeySource{client: client} }

// Next mints the next logical operation's idempotency key.
func (k *KeySource) Next() string {
	k.seq++
	return fmt.Sprintf("%s-%d", k.client, k.seq)
}
