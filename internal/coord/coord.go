// Package coord implements a minimal ZooKeeper-like coordination
// service: client sessions kept alive by pings, ephemeral znodes that
// vanish when their owner's session expires, and a leader registry
// (oldest live ephemeral in a group wins — the standard ZooKeeper
// leader-election recipe).
//
// The service exists because several studied failures hinge on a
// system's *integration* with its coordination service rather than on
// either system alone: in the ActiveMQ hang of Figure 6, the master
// stays the registered leader because its ZooKeeper session is alive,
// even though no replica can reach it.
package coord

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/netsim"
	"neat/internal/transport"
)

// RPC method names.
const (
	mPing     = "zk.ping"
	mRegister = "zk.register"
	mUnreg    = "zk.unregister"
	mLeader   = "zk.leader"
	mMembers  = "zk.members"
	mPut      = "zk.put"
	mGet      = "zk.get"
)

type pingMsg struct{ Session netsim.NodeID }

type registerMsg struct {
	Session netsim.NodeID
	Group   string
}

type leaderReq struct{ Group string }

type membersReq struct{ Group string }

type putReq struct{ Path, Data string }

type getReq struct{ Path string }

// ErrNoLeader is returned when a group has no live member.
var ErrNoLeader = errors.New("coord: group has no live members")

// ErrNotFound is returned for missing paths.
var ErrNotFound = errors.New("coord: path not found")

// Options configures the service.
type Options struct {
	// SessionTTL is how long a session survives without a ping.
	SessionTTL time.Duration
	// SweepInterval is how often expired sessions are collected.
	SweepInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SessionTTL == 0 {
		o.SessionTTL = 60 * time.Millisecond
	}
	if o.SweepInterval == 0 {
		o.SweepInterval = 10 * time.Millisecond
	}
	return o
}

type ephemeral struct {
	session netsim.NodeID
	group   string
	seq     uint64
}

// Service is the coordination service running on one fabric node. (A
// production ZooKeeper is itself replicated; the studied integration
// failures do not depend on that, so the service here is a single
// authoritative node, which also matches NEAT's test topology where
// ZooKeeper is a separate "central service" to partition around.)
type Service struct {
	id   netsim.NodeID
	ep   *transport.Endpoint
	opts Options

	mu        sync.Mutex
	sessions  map[netsim.NodeID]time.Time
	ephemeral map[netsim.NodeID]*ephemeral // one registration per session
	data      map[string]string
	seq       uint64
	stopped   bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewService creates the service on a node, unstarted.
func NewService(n *netsim.Network, id netsim.NodeID, opts Options) *Service {
	s := &Service{
		id:        id,
		ep:        transport.NewEndpoint(n, id),
		opts:      opts.withDefaults(),
		sessions:  make(map[netsim.NodeID]time.Time),
		ephemeral: make(map[netsim.NodeID]*ephemeral),
		data:      make(map[string]string),
		stopCh:    make(chan struct{}),
	}
	s.ep.Handle(mPing, s.onPing)
	s.ep.Handle(mRegister, s.onRegister)
	s.ep.Handle(mUnreg, s.onUnregister)
	s.ep.Handle(mLeader, s.onLeader)
	s.ep.Handle(mMembers, s.onMembers)
	s.ep.Handle(mPut, s.onPut)
	s.ep.Handle(mGet, s.onGet)
	return s
}

// ID returns the service's node ID.
func (s *Service) ID() netsim.NodeID { return s.id }

// Start launches the session sweeper. The ticker is created on the
// caller for deterministic creation order.
func (s *Service) Start() {
	s.wg.Add(1)
	t := s.ep.Clock().NewTicker(s.opts.SweepInterval)
	go s.sweepLoop(t)
}

// Stop halts the service.
func (s *Service) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stopCh)
	s.wg.Wait()
	s.ep.Close()
}

func (s *Service) sweepLoop(t clock.Ticker) {
	defer s.wg.Done()
	defer t.Stop()
	clock.TickLoop(s.ep.Clock(), t, s.stopCh, s.expireSessions)
}

func (s *Service) expireSessions() {
	now := s.ep.Clock().Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for sess, last := range s.sessions {
		if now.Sub(last) > s.opts.SessionTTL {
			delete(s.sessions, sess)
			delete(s.ephemeral, sess)
		}
	}
}

func (s *Service) onPing(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(pingMsg)
	if !ok {
		return nil, errors.New("bad ping")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, live := s.sessions[msg.Session]; live {
		s.sessions[msg.Session] = s.ep.Clock().Now()
	}
	return nil, nil
}

func (s *Service) onRegister(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(registerMsg)
	if !ok {
		return nil, errors.New("bad register")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions[msg.Session] = s.ep.Clock().Now()
	if e, exists := s.ephemeral[msg.Session]; exists && e.group == msg.Group {
		return e.seq, nil // re-register keeps the original seniority
	}
	s.seq++
	s.ephemeral[msg.Session] = &ephemeral{session: msg.Session, group: msg.Group, seq: s.seq}
	return s.seq, nil
}

func (s *Service) onUnregister(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(registerMsg)
	if !ok {
		return nil, errors.New("bad unregister")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sessions, msg.Session)
	delete(s.ephemeral, msg.Session)
	return nil, nil
}

// leaderLocked returns the live member of group with the smallest
// registration sequence — ZooKeeper's "lowest ephemeral-sequential
// znode" election recipe.
func (s *Service) leaderLocked(group string) (netsim.NodeID, error) {
	var best *ephemeral
	for _, e := range s.ephemeral {
		if e.group != group {
			continue
		}
		if best == nil || e.seq < best.seq {
			best = e
		}
	}
	if best == nil {
		return "", ErrNoLeader
	}
	return best.session, nil
}

func (s *Service) onLeader(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(leaderReq)
	if !ok {
		return nil, errors.New("bad leader request")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaderLocked(req.Group)
}

func (s *Service) onMembers(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(membersReq)
	if !ok {
		return nil, errors.New("bad members request")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []netsim.NodeID
	for _, e := range s.ephemeral {
		if e.group == req.Group {
			out = append(out, e.session)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (s *Service) onPut(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(putReq)
	if !ok {
		return nil, errors.New("bad put")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[req.Path] = req.Data
	return nil, nil
}

func (s *Service) onGet(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(getReq)
	if !ok {
		return nil, errors.New("bad get")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, found := s.data[req.Path]
	if !found {
		return nil, ErrNotFound
	}
	return v, nil
}

// LiveSessions returns the currently live session IDs, sorted (for
// tests).
func (s *Service) LiveSessions() []netsim.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]netsim.NodeID, 0, len(s.sessions))
	for id := range s.sessions {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Session is a client-side handle: it registers an ephemeral in a
// group and keeps the session alive with pings from its owner's node.
type Session struct {
	ep      *transport.Endpoint
	service netsim.NodeID
	group   string
	// reestablish switches the keepalive from pings to re-registration
	// (the ZooKeeper-client model: a new session is negotiated after an
	// expiry). Plain pings are the studied default — the service
	// ignores them once the session expired, so the expiry is permanent.
	reestablish bool

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewSession registers an ephemeral membership for ep's node in group
// and starts the keepalive pinger. pingEvery should be well under the
// service's SessionTTL.
func NewSession(ep *transport.Endpoint, service netsim.NodeID, group string, pingEvery time.Duration) (*Session, error) {
	return newSession(ep, service, group, pingEvery, false)
}

// NewReestablishingSession is NewSession with a ZooKeeper-client-style
// keepalive: every beat re-registers instead of pinging. A live
// session's re-registration refreshes the TTL and keeps its seniority;
// an expired one transparently negotiates a fresh registration with a
// new sequence — the member rejoins at the back of the election queue.
// An outage longer than the TTL therefore costs the session its
// seniority, never its membership.
func NewReestablishingSession(ep *transport.Endpoint, service netsim.NodeID, group string, pingEvery time.Duration) (*Session, error) {
	return newSession(ep, service, group, pingEvery, true)
}

// newSession registers and starts the keepalive loop; reestablish must
// be fixed before the loop goroutine launches.
func newSession(ep *transport.Endpoint, service netsim.NodeID, group string, pingEvery time.Duration, reestablish bool) (*Session, error) {
	s := &Session{ep: ep, service: service, group: group, reestablish: reestablish, stopCh: make(chan struct{})}
	_, err := ep.Call(service, mRegister, registerMsg{Session: ep.ID(), Group: group}, 0)
	if err != nil {
		return nil, fmt.Errorf("coord: register: %w", err)
	}
	s.wg.Add(1)
	t := ep.Clock().NewTicker(pingEvery)
	go s.pingLoop(t)
	return s, nil
}

func (s *Session) pingLoop(t clock.Ticker) {
	defer s.wg.Done()
	defer t.Stop()
	clock.TickLoop(s.ep.Clock(), t, s.stopCh, func() {
		if s.reestablish {
			//neat:allow ambiguity -- fire-and-forget re-register: the next tick retries and the service dedups by session
			_, _ = s.ep.Call(s.service, mRegister, registerMsg{Session: s.ep.ID(), Group: s.group}, 0)
		} else {
			_ = s.ep.Notify(s.service, mPing, pingMsg{Session: s.ep.ID()})
		}
	})
}

// Close stops the keepalive (the session will expire server-side).
func (s *Session) Close() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.wg.Wait()
}

// IsNoLeader reports whether err is the service's authoritative
// "group has no live members" answer — distinct from a transport
// failure: the service was reached and said nobody leads. A caller
// holding an ephemeral registration can conclude its own session has
// expired (a live session would put the caller itself in the group).
func IsNoLeader(err error) bool {
	if errors.Is(err, ErrNoLeader) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && re.Msg == ErrNoLeader.Error()
}

// Leader asks the service who currently leads the group.
func Leader(ep *transport.Endpoint, service netsim.NodeID, group string, timeout time.Duration) (netsim.NodeID, error) {
	resp, err := ep.Call(service, mLeader, leaderReq{Group: group}, timeout)
	if err != nil {
		return "", err
	}
	id, _ := resp.(netsim.NodeID)
	return id, nil
}

// Members lists the live members of a group.
func Members(ep *transport.Endpoint, service netsim.NodeID, group string, timeout time.Duration) ([]netsim.NodeID, error) {
	resp, err := ep.Call(service, mMembers, membersReq{Group: group}, timeout)
	if err != nil {
		return nil, err
	}
	ids, _ := resp.([]netsim.NodeID)
	return ids, nil
}

// Put stores data at a path on the service.
func Put(ep *transport.Endpoint, service netsim.NodeID, path, data string, timeout time.Duration) error {
	_, err := ep.Call(service, mPut, putReq{Path: path, Data: data}, timeout)
	return err
}

// Get reads a path from the service.
func Get(ep *transport.Endpoint, service netsim.NodeID, path string, timeout time.Duration) (string, error) {
	resp, err := ep.Call(service, mGet, getReq{Path: path}, timeout)
	if err != nil {
		return "", err
	}
	v, _ := resp.(string)
	return v, nil
}
