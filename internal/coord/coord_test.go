package coord

//neat:allow-file realclock -- real-deadline liveness polls waiting on session expiry

import (
	"testing"
	"time"

	"neat/internal/netsim"
	"neat/internal/transport"
)

func service(t *testing.T, opts Options) (*netsim.Network, *Service) {
	t.Helper()
	n := netsim.New(netsim.Options{})
	s := NewService(n, "zk", opts)
	s.Start()
	t.Cleanup(s.Stop)
	return n, s
}

func endpoint(t *testing.T, n *netsim.Network, id netsim.NodeID) *transport.Endpoint {
	t.Helper()
	ep := transport.NewEndpoint(n, id)
	t.Cleanup(ep.Close)
	return ep
}

func TestRegisterAndLeaderSeniority(t *testing.T) {
	n, _ := service(t, Options{})
	a := endpoint(t, n, "a")
	b := endpoint(t, n, "b")
	sa, err := NewSession(a, "zk", "g", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := NewSession(b, "zk", "g", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	leader, err := Leader(a, "zk", "g", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if leader != "a" {
		t.Fatalf("leader = %s, want the senior registrant a", leader)
	}
	members, err := Members(a, "zk", "g", time.Second)
	if err != nil || len(members) != 2 {
		t.Fatalf("members = %v, %v", members, err)
	}
}

func TestSessionExpiryPromotesNextSenior(t *testing.T) {
	n, svc := service(t, Options{SessionTTL: 40 * time.Millisecond, SweepInterval: 5 * time.Millisecond})
	a := endpoint(t, n, "a")
	b := endpoint(t, n, "b")
	sa, _ := NewSession(a, "zk", "g", 10*time.Millisecond)
	defer sa.Close()
	sb, _ := NewSession(b, "zk", "g", 10*time.Millisecond)
	defer sb.Close()

	// Cut a off from zk: its session must expire.
	n.SetSwitch(netsim.FilterFunc(func(src, dst netsim.NodeID) netsim.Verdict {
		if (src == "a" && dst == "zk") || (src == "zk" && dst == "a") {
			return netsim.VerdictDrop
		}
		return netsim.VerdictAccept
	}))
	deadline := time.Now().Add(2 * time.Second)
	for {
		leader, err := Leader(b, "zk", "g", time.Second)
		if err == nil && leader == "b" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leadership never moved to b; live=%v", svc.LiveSessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLeaderOfEmptyGroup(t *testing.T) {
	n, _ := service(t, Options{})
	a := endpoint(t, n, "a")
	if _, err := Leader(a, "zk", "nobody", time.Second); err == nil {
		t.Fatal("leader of empty group must error")
	}
}

func TestReRegisterKeepsSeniority(t *testing.T) {
	n, _ := service(t, Options{})
	a := endpoint(t, n, "a")
	b := endpoint(t, n, "b")
	sa, _ := NewSession(a, "zk", "g", 10*time.Millisecond)
	defer sa.Close()
	sb, _ := NewSession(b, "zk", "g", 10*time.Millisecond)
	defer sb.Close()
	// a registers again (e.g. after a reconnect): must not lose rank.
	sa2, err := NewSession(a, "zk", "g", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer sa2.Close()
	leader, _ := Leader(b, "zk", "g", time.Second)
	if leader != "a" {
		t.Fatalf("leader = %s, want a (seniority preserved)", leader)
	}
}

func TestUnregisterReleasesLeadership(t *testing.T) {
	n, _ := service(t, Options{})
	a := endpoint(t, n, "a")
	b := endpoint(t, n, "b")
	sa, _ := NewSession(a, "zk", "g", 10*time.Millisecond)
	sb, _ := NewSession(b, "zk", "g", 10*time.Millisecond)
	defer sb.Close()
	sa.Close()
	if _, err := a.Call("zk", mUnreg, registerMsg{Session: "a", Group: "g"}, time.Second); err != nil {
		t.Fatal(err)
	}
	leader, err := Leader(b, "zk", "g", time.Second)
	if err != nil || leader != "b" {
		t.Fatalf("leader = %s, %v; want b", leader, err)
	}
}

func TestPutGet(t *testing.T) {
	n, _ := service(t, Options{})
	a := endpoint(t, n, "a")
	if err := Put(a, "zk", "/config/x", "42", time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := Get(a, "zk", "/config/x", time.Second)
	if err != nil || got != "42" {
		t.Fatalf("get = %q, %v", got, err)
	}
	if _, err := Get(a, "zk", "/missing", time.Second); err == nil {
		t.Fatal("missing path must error")
	}
}

func TestPingKeepsSessionAlive(t *testing.T) {
	_, svc := service(t, Options{SessionTTL: 50 * time.Millisecond, SweepInterval: 5 * time.Millisecond})
	a := endpoint(t, svcNet(svc), "a")
	sa, err := NewSession(a, "zk", "g", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	time.Sleep(150 * time.Millisecond) // several TTLs
	if live := svc.LiveSessions(); len(live) != 1 || live[0] != "a" {
		t.Fatalf("live sessions = %v, want [a]", live)
	}
}

// svcNet extracts the fabric a service endpoint is attached to.
func svcNet(s *Service) *netsim.Network { return s.ep.Network() }

// TestReestablishingSessionSurvivesExpiry: an outage longer than the
// TTL expires the session; the re-establishing keepalive's register
// beats bring it back (with fresh seniority) once the service is
// reachable again, while a plain ping keepalive stays dead forever.
func TestReestablishingSessionSurvivesExpiry(t *testing.T) {
	n, svc := service(t, Options{SessionTTL: 40 * time.Millisecond, SweepInterval: 5 * time.Millisecond})
	a := endpoint(t, n, "a")
	b := endpoint(t, n, "b")
	sa, err := NewReestablishingSession(a, "zk", "g", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := NewSession(b, "zk", "g", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	// Cut both off from zk until every session has expired.
	n.SetSwitch(netsim.FilterFunc(func(src, dst netsim.NodeID) netsim.Verdict {
		if dst == "zk" || src == "zk" {
			return netsim.VerdictDrop
		}
		return netsim.VerdictAccept
	}))
	deadline := time.Now().Add(2 * time.Second)
	for len(svc.LiveSessions()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions never expired; live=%v", svc.LiveSessions())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Heal. Only a (re-establishing) comes back; b's pings are ignored.
	n.SetSwitch(nil)
	deadline = time.Now().Add(2 * time.Second)
	for {
		if live := svc.LiveSessions(); len(live) == 1 && live[0] == "a" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live sessions = %v, want exactly [a] back", svc.LiveSessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
	leader, err := Leader(a, "zk", "g", time.Second)
	if err != nil || leader != "a" {
		t.Fatalf("leader = %s, %v; want the re-established a", leader, err)
	}
}
