// Package mqueue implements a replicated message queue in the mould of
// ActiveMQ's master/slave deployment: brokers register with a
// ZooKeeper-like coordination service (package coord); the senior
// registrant is the master; the master serves clients and replicates
// queue mutations to the slaves.
//
// Two studied failures live here:
//
//   - Figure 6 (AMQ-7064): a partial partition isolates the master from
//     the slaves but not from ZooKeeper. The master cannot replicate,
//     so client operations fail — yet the slaves never take over,
//     because ZooKeeper still sees the master's session. The system
//     hangs until the partition heals.
//   - Listing 2 (AMQ-6978): a complete partition isolates the master
//     (with a client) from everything, including ZooKeeper. The master
//     keeps serving from its local copy while the majority elects a new
//     master from the replicated state — and the same message is
//     dequeued on both sides.
package mqueue

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/coord"
	"neat/internal/netsim"
	"neat/internal/transport"
)

// Group is the coordination-service group brokers register in.
const Group = "brokers"

// RPC method names.
const (
	mOp   = "mq.op"
	mRepl = "mq.repl"
	mRole = "mq.role"
)

type opKind int

const (
	opSend opKind = iota
	opRecv
)

type opReq struct {
	Kind  opKind
	Queue string
	Msg   string
}

type opResp struct {
	Msg string
}

// entry is one stored message with the identity its master assigned at
// enqueue time. Replication, consumption, and tombstoning all work on
// the ID, the way real brokers track message IDs and offsets.
type entry struct {
	ID  string
	Msg string
}

// replMsg replicates one mutation. Entry carries the exact queue
// entry concerned — the entry enqueued (opSend) or the entry the
// master handed out (opRecv) — so slaves mutate by identity, never by
// position: a slave whose queue has diverged in order must not drop an
// innocent head.
type replMsg struct {
	Req   opReq
	Entry entry
}

// NotMasterError redirects the client to the master the broker
// believes in.
type NotMasterError struct{ Master netsim.NodeID }

// Error implements the error interface.
func (e *NotMasterError) Error() string {
	return fmt.Sprintf("not master; try %s", e.Master)
}

// ErrUnavailable is returned when the master cannot replicate to its
// slaves and RequireReplicaAcks is set — the Figure 6 hang, surfaced
// as an error instead of an indefinite block.
var ErrUnavailable = errors.New("mqueue: replicas unreachable, operation unavailable")

// ErrEmpty is returned when receiving from an empty queue.
var ErrEmpty = errors.New("mqueue: queue empty")

// ErrNotServing is returned by a broker that stopped serving because
// it lost its coordination-service connection (the fixed behaviour).
var ErrNotServing = errors.New("mqueue: broker suspended (coordination service unreachable)")

// Config configures the broker group.
type Config struct {
	// Brokers is the broker membership in registration order; the
	// first broker becomes the initial master.
	Brokers []netsim.NodeID
	// ZK is the coordination-service node.
	ZK netsim.NodeID
	// SessionPing is the coordination keepalive period.
	SessionPing time.Duration
	// RolePoll is how often brokers refresh who the master is.
	RolePoll time.Duration
	// RequireReplicaAcks makes the master fail client operations it
	// cannot replicate to every slave (ActiveMQ's replicated store).
	RequireReplicaAcks bool
	// StepDownOnZKLoss suspends a broker that cannot reach the
	// coordination service — the fix for the double-dequeue failure
	// (KAFKA-6173's "leader should stop accepting requests when
	// disconnected from ZK"). Off by default, as in the studied
	// systems.
	StepDownOnZKLoss bool
	// ReestablishSession gives brokers ZooKeeper-client-style
	// keepalives: an expired coordination session is transparently
	// re-registered (with fresh, junior seniority) once the service is
	// reachable again. Off by default — the studied deployments leave
	// an expired session dead, so an outage longer than the TTL can
	// end with every broker permanently masterless.
	ReestablishSession bool
	// RPCTimeout bounds replication and coordination calls.
	RPCTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.SessionPing == 0 {
		c.SessionPing = 10 * time.Millisecond
	}
	if c.RolePoll == 0 {
		c.RolePoll = 10 * time.Millisecond
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 30 * time.Millisecond
	}
	return c
}

// Broker is one queue server.
type Broker struct {
	cfg Config
	id  netsim.NodeID
	ep  *transport.Endpoint

	mu          sync.Mutex
	isMaster    bool
	knownMaster netsim.NodeID
	zkReachable bool
	// lastRole is when (on this broker's clock) the master role was
	// last confirmed against the coordination service. A
	// StepDownOnZKLoss master only serves while this is fresh: a broker
	// that froze in a GC stall wakes with an old confirmation and must
	// re-validate before touching a queue, because its session may have
	// expired and the role moved while it was out.
	lastRole time.Time
	queues   map[string][]entry
	// removed tombstones every entry ID this broker has consumed or
	// seen consumed, so a replicated enqueue that arrives after (a
	// reordered link) or around its own consumption cannot resurrect
	// the message.
	removed map[string]bool
	enqSeq  uint64
	session *coord.Session
	stopped bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewBroker creates a broker, unstarted.
func NewBroker(n *netsim.Network, id netsim.NodeID, cfg Config) *Broker {
	cfg = cfg.withDefaults()
	b := &Broker{
		cfg:         cfg,
		id:          id,
		ep:          transport.NewEndpoint(n, id),
		queues:      make(map[string][]entry),
		removed:     make(map[string]bool),
		zkReachable: true,
		stopCh:      make(chan struct{}),
	}
	b.ep.DefaultTimeout = cfg.RPCTimeout
	b.ep.Handle(mOp, b.onOp)
	b.ep.Handle(mRepl, b.onRepl)
	b.ep.Handle(mRole, b.onRole)
	return b
}

// ID returns the broker's node ID.
func (b *Broker) ID() netsim.NodeID { return b.id }

// Start registers with the coordination service and begins polling
// for the master role.
func (b *Broker) Start() error {
	newSession := coord.NewSession
	if b.cfg.ReestablishSession {
		newSession = coord.NewReestablishingSession
	}
	sess, err := newSession(b.ep, b.cfg.ZK, Group, b.cfg.SessionPing)
	if err != nil {
		return fmt.Errorf("mqueue: broker %s: %w", b.id, err)
	}
	b.mu.Lock()
	b.session = sess
	b.mu.Unlock()
	b.pollRole()
	b.wg.Add(1)
	t := b.ep.Clock().NewTicker(b.cfg.RolePoll)
	go b.roleLoop(t)
	return nil
}

// Stop halts the broker.
func (b *Broker) Stop() {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return
	}
	b.stopped = true
	sess := b.session
	b.mu.Unlock()
	close(b.stopCh)
	b.wg.Wait()
	if sess != nil {
		sess.Close()
	}
	b.ep.Close()
}

func (b *Broker) roleLoop(t clock.Ticker) {
	defer b.wg.Done()
	defer t.Stop()
	clock.TickLoop(b.ep.Clock(), t, b.stopCh, b.pollRole)
}

// pollRole refreshes the broker's view of who is master. When the
// coordination service is unreachable the flawed behaviour keeps the
// last known role — an isolated master keeps serving.
func (b *Broker) pollRole() {
	leader, err := coord.Leader(b.ep, b.cfg.ZK, Group, b.cfg.RPCTimeout)
	b.mu.Lock()
	defer b.mu.Unlock()
	if coord.IsNoLeader(err) {
		// The service answered: the group is empty, so this broker's
		// own session has expired — a live session would put the broker
		// itself in the group. Even the flawed configuration demotes
		// here: the studied behaviour is serving while *disconnected*
		// from the coordination service, not serving against its
		// acknowledged expiry notice (ZooKeeper clients see a definitive
		// SessionExpired). Without ReestablishSession nobody ever
		// registers again, so a round whose faults outlived every
		// session TTL ends permanently masterless.
		b.zkReachable = true
		b.isMaster = false
		b.knownMaster = ""
		return
	}
	if err != nil {
		b.zkReachable = false
		if b.cfg.StepDownOnZKLoss {
			b.isMaster = false
		}
		return
	}
	b.zkReachable = true
	b.isMaster = leader == b.id
	b.knownMaster = leader
	b.lastRole = b.ep.Clock().Now()
}

// roleFresh is how many role-poll periods old a master's last
// confirmation may be before a StepDownOnZKLoss broker refuses to
// serve. Four periods tolerate a busy poll loop and moderate clock
// drift while still fencing a broker that lost real time to a stall.
const roleFresh = 4

// IsMaster reports whether the broker currently believes it is master.
func (b *Broker) IsMaster() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.isMaster
}

// QueueLen reports the local length of a queue (for verification).
func (b *Broker) QueueLen(q string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queues[q])
}

func (b *Broker) slaves() []netsim.NodeID {
	out := make([]netsim.NodeID, 0, len(b.cfg.Brokers)-1)
	for _, id := range b.cfg.Brokers {
		if id != b.id {
			out = append(out, id)
		}
	}
	return out
}

func (b *Broker) onRole(netsim.NodeID, any) (any, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	role := "slave"
	if b.isMaster {
		role = "master"
	}
	return role, nil
}

func (b *Broker) onOp(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(opReq)
	if !ok {
		return nil, errors.New("bad op")
	}
	b.mu.Lock()
	if !b.isMaster {
		if b.cfg.StepDownOnZKLoss && !b.zkReachable {
			b.mu.Unlock()
			return nil, ErrNotServing
		}
		master := b.knownMaster
		b.mu.Unlock()
		return nil, &NotMasterError{Master: master}
	}
	if b.cfg.StepDownOnZKLoss {
		// Freshness fence: a master serves only on a recently confirmed
		// role. A broker resuming from a process pause sees its clock
		// far past lastRole (time kept flowing while its poll loop was
		// frozen) and bounces queued requests until the next successful
		// poll re-confirms — the zombie-master window that produces
		// double dequeues on the flawed configuration.
		if now := b.ep.Clock().Now(); now.Sub(b.lastRole) > roleFresh*b.cfg.RolePoll {
			b.mu.Unlock()
			return nil, ErrNotServing
		}
	}
	resp, ent, err := b.applyMasterLocked(req)
	b.mu.Unlock()
	if err != nil {
		return nil, err
	}
	acked := b.replicate(replMsg{Req: req, Entry: ent})
	if b.cfg.RequireReplicaAcks && acked < len(b.cfg.Brokers)-1 {
		return nil, ErrUnavailable
	}
	return resp, nil
}

// applyMasterLocked executes one client operation on the master,
// returning the queue entry the mutation concerned for replication.
func (b *Broker) applyMasterLocked(req opReq) (opResp, entry, error) {
	switch req.Kind {
	case opSend:
		b.enqSeq++
		ent := entry{ID: fmt.Sprintf("%s-%d", b.id, b.enqSeq), Msg: req.Msg}
		b.queues[req.Queue] = append(b.queues[req.Queue], ent)
		return opResp{}, ent, nil
	case opRecv:
		q := b.queues[req.Queue]
		if len(q) == 0 {
			return opResp{}, entry{}, ErrEmpty
		}
		ent := q[0]
		b.queues[req.Queue] = q[1:]
		b.removed[ent.ID] = true
		return opResp{Msg: ent.Msg}, ent, nil
	default:
		return opResp{}, entry{}, fmt.Errorf("mqueue: unknown op %d", req.Kind)
	}
}

func (b *Broker) replicate(msg replMsg) int {
	acked := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, s := range b.slaves() {
		s := s
		wg.Add(1)
		clock.Go(b.ep.Clock(), func() {
			defer wg.Done()
			//neat:allow ambiguity -- modeled broker counts only acked slaves; the ambiguous ack gap is the studied at-most-once break
			if _, err := b.ep.Call(s, mRepl, msg, b.cfg.RPCTimeout); err == nil {
				mu.Lock()
				acked++
				mu.Unlock()
			}
		})
	}
	clock.Idle(b.ep.Clock(), wg.Wait)
	return acked
}

// onRepl applies a mutation replicated by a master, by entry identity:
// an enqueue inserts the master's entry (unless this broker already
// holds or already consumed it — a link that reorders or redelivers
// replication traffic must not resurrect or duplicate a message), and
// a receive removes exactly the entry the master handed out, wherever
// a diverged queue holds it. A receive whose entry has not arrived yet
// leaves a tombstone so the late enqueue is swallowed on arrival.
func (b *Broker) onRepl(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(replMsg)
	if !ok {
		return nil, errors.New("bad repl")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch msg.Req.Kind {
	case opSend:
		if b.removed[msg.Entry.ID] {
			return nil, nil
		}
		for _, e := range b.queues[msg.Req.Queue] {
			if e.ID == msg.Entry.ID {
				return nil, nil
			}
		}
		b.queues[msg.Req.Queue] = append(b.queues[msg.Req.Queue], msg.Entry)
	case opRecv:
		b.removed[msg.Entry.ID] = true
		q := b.queues[msg.Req.Queue]
		for i, e := range q {
			if e.ID == msg.Entry.ID {
				b.queues[msg.Req.Queue] = append(q[:i:i], q[i+1:]...)
				break
			}
		}
	}
	return nil, nil
}

// Client is a queue client.
type Client struct {
	ep      *transport.Endpoint
	brokers []netsim.NodeID
	timeout time.Duration
}

// NewClient attaches a queue client to the fabric.
func NewClient(n *netsim.Network, id netsim.NodeID, brokers []netsim.NodeID) *Client {
	return &Client{
		ep:      transport.NewEndpoint(n, id),
		brokers: brokers,
		timeout: 100 * time.Millisecond,
	}
}

// ID returns the client's node ID.
func (c *Client) ID() netsim.NodeID { return c.ep.ID() }

// Close detaches the client.
func (c *Client) Close() { c.ep.Close() }

// MaybeExecuted reports whether the failed operation may still have
// been applied by a broker: an attempt ended in a transport-level
// failure (on a slow or lossy link the request can be fully executed
// with only the reply lost — a silent success), or a master returned
// ErrUnavailable after applying locally. Definitive refusals
// (redirects, suspension, an empty queue) carry no such ambiguity.
// Callers accounting for at-most-once or durability must treat such
// failures as possibly-consuming.
func MaybeExecuted(err error) bool {
	return transport.MaybeExecuted(err)
}

func (c *Client) do(req opReq) (opResp, error) {
	tried := make(map[netsim.NodeID]bool)
	queue := append([]netsim.NodeID(nil), c.brokers...)
	var lastErr error = errors.New("mqueue: no brokers")
	// maybe records whether ANY attempt — not just the one whose error
	// is returned — may have executed the operation, so a later
	// broker's definitive refusal cannot mask an earlier attempt's
	// silent success.
	maybe := false
	wrap := func(err error) error {
		if maybe {
			return transport.MarkMaybeExecuted(err)
		}
		return err
	}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		if tried[node] {
			continue
		}
		tried[node] = true
		resp, err := c.ep.Call(node, mOp, req, c.timeout)
		if err == nil {
			r, _ := resp.(opResp)
			return r, nil
		}
		lastErr = err
		if hint, ok := redirectHint(err); ok {
			if hint != "" && !tried[hint] {
				queue = append([]netsim.NodeID{hint}, queue...)
			}
			continue
		}
		if transport.IsRemote(err) {
			// Definitive application error from a master. Unavailable
			// means the master applied locally before replication
			// failed; everything else refused before applying.
			if remoteIs(err, ErrUnavailable) {
				maybe = true
			}
			return opResp{}, wrap(err)
		}
		// Transport failure: the request may have been executed with
		// the reply lost.
		maybe = true
	}
	return opResp{}, wrap(lastErr)
}

func redirectHint(err error) (netsim.NodeID, bool) {
	var re *transport.RemoteError
	if !errors.As(err, &re) {
		return "", false
	}
	const mark = "not master; try "
	if strings.HasPrefix(re.Msg, mark) {
		return netsim.NodeID(re.Msg[len(mark):]), true
	}
	return "", false
}

// Send enqueues a message.
func (c *Client) Send(queue, msg string) error {
	_, err := c.do(opReq{Kind: opSend, Queue: queue, Msg: msg})
	return err
}

// Recv dequeues the head message.
func (c *Client) Recv(queue string) (string, error) {
	resp, err := c.do(opReq{Kind: opRecv, Queue: queue})
	return resp.Msg, err
}

// SendTo enqueues directly at a specific broker (no redirects), for
// tests targeting one side of a partition.
func (c *Client) SendTo(broker netsim.NodeID, queue, msg string) error {
	_, err := c.ep.Call(broker, mOp, opReq{Kind: opSend, Queue: queue, Msg: msg}, c.timeout)
	return err
}

// RecvFrom dequeues directly from a specific broker.
func (c *Client) RecvFrom(broker netsim.NodeID, queue string) (string, error) {
	resp, err := c.ep.Call(broker, mOp, opReq{Kind: opRecv, Queue: queue}, c.timeout)
	if err != nil {
		return "", err
	}
	r, _ := resp.(opResp)
	return r.Msg, nil
}

// IsUnavailable reports whether err is the replication unavailability.
func IsUnavailable(err error) bool { return remoteIs(err, ErrUnavailable) }

// IsEmpty reports whether err is an empty-queue receive.
func IsEmpty(err error) bool { return remoteIs(err, ErrEmpty) }

// IsNotServing reports whether err is a suspended broker.
func IsNotServing(err error) bool { return remoteIs(err, ErrNotServing) }

func remoteIs(err error, target error) bool {
	if errors.Is(err, target) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && re.Msg == target.Error()
}
