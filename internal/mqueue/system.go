package mqueue

import (
	"neat/internal/coord"
	"neat/internal/core"
	"neat/internal/netsim"
)

// System bundles the coordination service and broker group into NEAT's
// ISystem interface.
type System struct {
	cfg     Config
	net     *netsim.Network
	zk      *coord.Service
	brokers map[netsim.NodeID]*Broker
}

// NewSystem creates the service and brokers, unstarted. zkOpts
// configures the coordination service's session timing.
func NewSystem(n *netsim.Network, cfg Config, zkOpts coord.Options) *System {
	cfg = cfg.withDefaults()
	s := &System{
		cfg:     cfg,
		net:     n,
		zk:      coord.NewService(n, cfg.ZK, zkOpts),
		brokers: make(map[netsim.NodeID]*Broker),
	}
	for _, id := range cfg.Brokers {
		s.brokers[id] = NewBroker(n, id, cfg)
	}
	return s
}

// Name implements core.ISystem.
func (s *System) Name() string { return "mqueue" }

// Start implements core.ISystem: the coordination service first, then
// brokers in configured order so the first broker is the senior
// registrant (initial master).
func (s *System) Start() error {
	s.zk.Start()
	for _, id := range s.cfg.Brokers {
		if err := s.brokers[id].Start(); err != nil {
			return err
		}
	}
	return nil
}

// Stop implements core.ISystem.
func (s *System) Stop() error {
	for _, b := range s.brokers {
		b.Stop()
	}
	s.zk.Stop()
	return nil
}

// Status implements core.ISystem.
func (s *System) Status() map[netsim.NodeID]core.NodeStatus {
	out := make(map[netsim.NodeID]core.NodeStatus, len(s.brokers)+1)
	for id, b := range s.brokers {
		role := "slave"
		if b.IsMaster() {
			role = "master"
		}
		out[id] = core.NodeStatus{Up: s.net.IsUp(id), Role: role}
	}
	out[s.cfg.ZK] = core.NodeStatus{Up: s.net.IsUp(s.cfg.ZK), Role: "coordination"}
	return out
}

// Broker returns the broker on a node.
func (s *System) Broker(id netsim.NodeID) *Broker { return s.brokers[id] }

// ZK returns the coordination service.
func (s *System) ZK() *coord.Service { return s.zk }

// Masters returns every broker currently claiming mastership.
func (s *System) Masters() []netsim.NodeID {
	var out []netsim.NodeID
	for _, id := range s.cfg.Brokers {
		if s.brokers[id].IsMaster() {
			out = append(out, id)
		}
	}
	return out
}
