package mqueue

import (
	"testing"
	"time"

	"neat/internal/coord"
	"neat/internal/core"
	"neat/internal/netsim"
)

var brokerIDs = []netsim.NodeID{"b1", "b2", "b3"}

func testConfig() Config {
	return Config{
		Brokers:     brokerIDs,
		ZK:          "zk",
		SessionPing: 10 * time.Millisecond,
		RolePoll:    10 * time.Millisecond,
		RPCTimeout:  30 * time.Millisecond,
	}
}

func zkOpts() coord.Options {
	return coord.Options{SessionTTL: 60 * time.Millisecond, SweepInterval: 10 * time.Millisecond}
}

type fixture struct {
	eng *core.Engine
	sys *System
	c1  *Client
	c2  *Client
}

func deploy(t *testing.T, cfg Config) *fixture {
	t.Helper()
	eng := core.NewEngine(core.Options{})
	for _, id := range cfg.Brokers {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode(cfg.ZK, core.RoleService)
	eng.AddNode("c1", core.RoleClient)
	eng.AddNode("c2", core.RoleClient)
	sys := NewSystem(eng.Network(), cfg, zkOpts())
	if err := eng.Deploy(sys); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	f := &fixture{
		eng: eng,
		sys: sys,
		c1:  NewClient(eng.Network(), "c1", cfg.Brokers),
		c2:  NewClient(eng.Network(), "c2", cfg.Brokers),
	}
	t.Cleanup(func() {
		f.c1.Close()
		f.c2.Close()
		eng.Shutdown()
	})
	return f
}

func TestInitialMasterIsSeniorBroker(t *testing.T) {
	f := deploy(t, testConfig())
	ok := f.eng.WaitUntil(time.Second, func() bool {
		m := f.sys.Masters()
		return len(m) == 1 && m[0] == "b1"
	})
	if !ok {
		t.Fatalf("masters = %v, want [b1]", f.sys.Masters())
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.c1.Send("q", "hello"); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := f.c2.Recv("q")
	if err != nil || got != "hello" {
		t.Fatalf("recv = %q, %v", got, err)
	}
	if _, err := f.c2.Recv("q"); !IsEmpty(err) {
		t.Fatalf("recv empty = %v, want empty error", err)
	}
}

func TestSendsReplicateToSlaves(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.c1.Send("q", "m"); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(time.Second, func() bool {
		return f.sys.Broker("b2").QueueLen("q") == 1 && f.sys.Broker("b3").QueueLen("q") == 1
	})
	if !ok {
		t.Fatal("message never replicated to slaves")
	}
}

func TestMasterFailoverOnCrash(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.c1.Send("q", "m1"); err != nil {
		t.Fatal(err)
	}
	f.eng.Crash("b1")
	// b2 takes over. (The crashed b1 still holds its stale role flag
	// in memory; what matters is that the live senior broker leads.)
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		return f.sys.Broker("b2").IsMaster()
	})
	if !ok {
		t.Fatalf("b2 never took over; masters=%v", f.sys.Masters())
	}
	// The replicated message survives the failover.
	got := ""
	ok = f.eng.WaitUntil(2*time.Second, func() bool {
		var err error
		got, err = f.c2.Recv("q")
		return err == nil
	})
	if !ok || got != "m1" {
		t.Fatalf("recv after failover = %q ok=%v, want m1", got, ok)
	}
}

// TestFigure6PartialPartitionHangsSystem reproduces AMQ-7064: the
// master is isolated from the slaves but keeps its ZooKeeper session,
// so no failover happens — and with replica acks required, every
// client operation fails. The system is unavailable until the
// partition heals.
func TestFigure6PartialPartitionHangsSystem(t *testing.T) {
	cfg := testConfig()
	cfg.RequireReplicaAcks = true
	f := deploy(t, cfg)
	// Partial partition: master b1 vs slaves b2,b3. ZooKeeper and the
	// clients still reach everyone.
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"b1"}, []netsim.NodeID{"b2", "b3"}); err != nil {
		t.Fatal(err)
	}
	f.eng.Sleep(150 * time.Millisecond) // several session TTLs
	// No failover: ZooKeeper still sees b1.
	if m := f.sys.Masters(); len(m) != 1 || m[0] != "b1" {
		t.Fatalf("masters = %v; the slaves must not take over (ZK sees the master)", m)
	}
	// And the master cannot serve: unavailability.
	err := f.c1.Send("q", "m")
	if !IsUnavailable(err) {
		t.Fatalf("send during partial partition = %v, want unavailability", err)
	}
	// Healing restores service — the defining property of a
	// non-lasting failure (Finding 3's 79% case).
	if err := f.eng.HealAll(); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		return f.c1.Send("q", "m") == nil
	})
	if !ok {
		t.Fatal("system never recovered after heal")
	}
}

// TestListing2DoubleDequeue reproduces AMQ-6978: a complete partition
// isolates the master and one client from the rest (including
// ZooKeeper); the old master keeps serving its local queue while the
// majority elects a new master over the replicated state, and both
// sides dequeue the same message.
func TestListing2DoubleDequeue(t *testing.T) {
	f := deploy(t, testConfig())
	if err := f.c1.Send("q1", "msg1"); err != nil {
		t.Fatal(err)
	}
	if err := f.c1.Send("q1", "msg2"); err != nil {
		t.Fatal(err)
	}
	// Wait for full replication before splitting.
	ok := f.eng.WaitUntil(time.Second, func() bool {
		return f.sys.Broker("b2").QueueLen("q1") == 2 && f.sys.Broker("b3").QueueLen("q1") == 2
	})
	if !ok {
		t.Fatal("messages never fully replicated")
	}
	// Listing 2 line 8: minority = {master, client1}.
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"b1", "c1"},
		[]netsim.NodeID{"b2", "b3", "zk", "c2"}); err != nil {
		t.Fatal(err)
	}
	// Line 10: dequeue at the minority side — the old master still
	// believes it is master (it cannot reach ZK, and keeps its role).
	minMsg, err := f.c1.RecvFrom("b1", "q1")
	if err != nil {
		t.Fatalf("minority recv: %v", err)
	}
	// Line 11-12: wait for the majority to fail over, then dequeue.
	majMsg := ""
	ok = f.eng.WaitUntil(2*time.Second, func() bool {
		var err error
		majMsg, err = f.c2.Recv("q1")
		return err == nil
	})
	if !ok {
		t.Fatal("majority side never served a dequeue")
	}
	// Line 13: assertNotEqual fails in the paper — both sides got the
	// same message.
	if minMsg != majMsg {
		t.Fatalf("messages differ (%q vs %q); double dequeue expected", minMsg, majMsg)
	}
	if minMsg != "msg1" {
		t.Fatalf("dequeued %q, want msg1", minMsg)
	}
}

// TestStepDownOnZKLossPreventsDoubleDequeue is the fix control: the
// isolated master suspends itself, so only one side serves.
func TestStepDownOnZKLossPreventsDoubleDequeue(t *testing.T) {
	cfg := testConfig()
	cfg.StepDownOnZKLoss = true
	f := deploy(t, cfg)
	if err := f.c1.Send("q1", "msg1"); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(time.Second, func() bool {
		return f.sys.Broker("b2").QueueLen("q1") == 1
	})
	if !ok {
		t.Fatal("message never replicated")
	}
	if _, err := f.eng.Complete(
		[]netsim.NodeID{"b1", "c1"},
		[]netsim.NodeID{"b2", "b3", "zk", "c2"}); err != nil {
		t.Fatal(err)
	}
	// The isolated master must stop serving once it loses ZK.
	ok = f.eng.WaitUntil(2*time.Second, func() bool {
		_, err := f.c1.RecvFrom("b1", "q1")
		return err != nil && !IsEmpty(err)
	})
	if !ok {
		t.Fatal("isolated master kept serving despite StepDownOnZKLoss")
	}
}

func TestSlaveRedirectsToMaster(t *testing.T) {
	f := deploy(t, testConfig())
	// Direct op at a slave fails with a redirect.
	if _, err := f.c1.RecvFrom("b2", "q"); err == nil {
		t.Fatal("slave must not serve directly")
	}
	// The smart client follows it.
	if err := f.c1.Send("q", "m"); err != nil {
		t.Fatal(err)
	}
	got, err := f.c1.Recv("q")
	if err != nil || got != "m" {
		t.Fatalf("recv = %q, %v", got, err)
	}
}

// TestExpiredSessionsLeaveGroupMasterless: an outage that cuts every
// broker from ZooKeeper for longer than the session TTL expires all
// three sessions. After the heal the service authoritatively answers
// "no leader" — even flawed brokers demote against that expiry notice
// (the studied flaw is serving while disconnected, not against a
// definitive SessionExpired), and with no session re-establishment the
// group stays permanently masterless: the paper's failure that
// persists after the partition heals.
func TestExpiredSessionsLeaveGroupMasterless(t *testing.T) {
	f := deploy(t, testConfig())
	p, err := f.eng.Complete(
		[]netsim.NodeID{"zk"},
		[]netsim.NodeID{"b1", "b2", "b3", "c1", "c2"})
	if err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		return len(f.sys.ZK().LiveSessions()) == 0
	})
	if !ok {
		t.Fatalf("sessions never expired: %v", f.sys.ZK().LiveSessions())
	}
	if err := f.eng.Heal(p); err != nil {
		t.Fatal(err)
	}
	// Every broker polls a reachable ZK, learns the group is empty, and
	// steps down for good.
	ok = f.eng.WaitUntil(2*time.Second, func() bool {
		return len(f.sys.Masters()) == 0
	})
	if !ok {
		t.Fatalf("masters after heal = %v, want none", f.sys.Masters())
	}
	if err := f.c1.Send("q", "m"); err == nil {
		t.Fatal("send succeeded against a masterless group")
	}
}

// TestReestablishingSessionsRecoverMaster: the same full outage with
// ReestablishSession on — expired sessions transparently re-register
// once ZooKeeper is reachable again, a master is re-elected, and
// client operations resume.
func TestReestablishingSessionsRecoverMaster(t *testing.T) {
	cfg := testConfig()
	cfg.ReestablishSession = true
	f := deploy(t, cfg)
	p, err := f.eng.Complete(
		[]netsim.NodeID{"zk"},
		[]netsim.NodeID{"b1", "b2", "b3", "c1", "c2"})
	if err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		return len(f.sys.ZK().LiveSessions()) == 0
	})
	if !ok {
		t.Fatalf("sessions never expired: %v", f.sys.ZK().LiveSessions())
	}
	if err := f.eng.Heal(p); err != nil {
		t.Fatal(err)
	}
	ok = f.eng.WaitUntil(2*time.Second, func() bool {
		if len(f.sys.Masters()) != 1 {
			return false
		}
		return f.c1.Send("q", "m") == nil
	})
	if !ok {
		t.Fatalf("group never recovered a serving master; masters=%v", f.sys.Masters())
	}
}
