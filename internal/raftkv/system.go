package raftkv

import (
	"time"

	"neat/internal/core"
	"neat/internal/netsim"
)

// System bundles a Raft group into NEAT's ISystem interface.
type System struct {
	cfg   Config
	net   *netsim.Network
	nodes map[netsim.NodeID]*Node
}

// NewSystem creates the group, unstarted.
func NewSystem(n *netsim.Network, cfg Config) *System {
	cfg = cfg.withDefaults()
	s := &System{cfg: cfg, net: n, nodes: make(map[netsim.NodeID]*Node)}
	for _, id := range cfg.Peers {
		s.nodes[id] = NewNode(n, id, cfg)
	}
	return s
}

// Name implements core.ISystem.
func (s *System) Name() string { return "raftkv" }

// Start implements core.ISystem. Nodes boot in configured order so
// ticker registration (and virtual-time firing order) is identical
// between runs of the same seed.
func (s *System) Start() error {
	for _, id := range s.cfg.Peers {
		s.nodes[id].Start()
	}
	return nil
}

// Stop implements core.ISystem.
func (s *System) Stop() error {
	for _, id := range s.cfg.Peers {
		s.nodes[id].Stop()
	}
	return nil
}

// Status implements core.ISystem.
func (s *System) Status() map[netsim.NodeID]core.NodeStatus {
	out := make(map[netsim.NodeID]core.NodeStatus, len(s.nodes))
	for id, nd := range s.nodes {
		out[id] = core.NodeStatus{Up: s.net.IsUp(id), Role: nd.Status().Role.String()}
	}
	return out
}

// Node returns the Raft node on a host.
func (s *System) Node(id netsim.NodeID) *Node { return s.nodes[id] }

// Leaders returns every node currently claiming leadership.
func (s *System) Leaders() []netsim.NodeID {
	var out []netsim.NodeID
	for _, id := range s.cfg.Peers {
		if s.nodes[id].Status().Role == LeaderRole {
			out = append(out, id)
		}
	}
	return out
}

// WaitForLeaderAmong blocks until one of the given nodes leads,
// returning it ("" on timeout). The wait is clock-driven so that under
// a virtual clock the poll loop advances simulated time instead of
// burning real milliseconds.
func (s *System) WaitForLeaderAmong(nodes []netsim.NodeID, timeout time.Duration) netsim.NodeID {
	clk := s.net.Clock()
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		for _, id := range nodes {
			if nd, ok := s.nodes[id]; ok && nd.Status().Role == LeaderRole {
				return id
			}
		}
		clk.Sleep(time.Millisecond)
	}
	return ""
}
