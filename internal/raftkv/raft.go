// Package raftkv implements the Raft consensus protocol (leader
// election with randomized timeouts, log replication with consistency
// checks, majority commit) driving a replicated key-value state
// machine — the "proven, strongly consistent protocol" substrate of
// the study.
//
// It also implements the tweak that broke RethinkDB (issue #5289,
// Section 4.4): administrative membership changes applied directly at
// the receiving node rather than through log consensus, with removed
// replicas deleting their Raft log. Under a partial partition this
// "apparently minor tweak of the Raft protocol" creates two replica
// sets that both commit writes for the same keys. With the tweak
// disabled, a removed replica remembers its removal and refuses to
// participate, so the old configuration can no longer form a quorum
// and consistency is preserved (at the cost of availability).
package raftkv

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"neat/internal/clock"
	"neat/internal/netsim"
	"neat/internal/transport"
)

// Role is a Raft node's current role.
type Role int

const (
	// Follower accepts entries from a leader.
	Follower Role = iota
	// Candidate is campaigning.
	Candidate
	// LeaderRole drives replication.
	LeaderRole
)

// String names the role.
func (r Role) String() string {
	switch r {
	case Candidate:
		return "candidate"
	case LeaderRole:
		return "leader"
	default:
		return "follower"
	}
}

// EntryKind distinguishes data from membership entries.
type EntryKind int

const (
	// EntryKV is a key-value mutation.
	EntryKV EntryKind = iota
	// EntryNoop is the empty entry a new leader commits to settle its
	// term.
	EntryNoop
)

// LogEntry is one replicated log record.
type LogEntry struct {
	Index uint64
	Term  uint64
	Kind  EntryKind
	Key   string
	Val   string
}

// RPC method names.
const (
	mVote   = "raft.requestVote"
	mAppend = "raft.appendEntries"
	mPut    = "raft.put"
	mGet    = "raft.get"
	mStatus = "raft.status"
	mRemove = "raft.adminRemove"
	mConfig = "raft.adminConfig"
)

type voteReq struct {
	Term         uint64
	Candidate    netsim.NodeID
	LastLogIndex uint64
	LastLogTerm  uint64
}

type voteResp struct {
	Term    uint64
	Granted bool
}

type appendReq struct {
	Term         uint64
	Leader       netsim.NodeID
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []LogEntry
	LeaderCommit uint64
}

type appendResp struct {
	Term    uint64
	Success bool
	// MatchHint accelerates conflict resolution: the follower's last
	// index.
	MatchHint uint64
}

type putReq struct{ Key, Val string }

type getReq struct{ Key string }

type removeMsg struct {
	NewConfig []netsim.NodeID
	// Relay marks a propagated copy so receivers do not re-propagate.
	Relay bool
}

// Status is a node's externally visible state.
type Status struct {
	ID          netsim.NodeID
	Role        Role
	Term        uint64
	Leader      netsim.NodeID
	LastIndex   uint64
	CommitIndex uint64
	Config      []netsim.NodeID
	Removed     bool
}

// NotLeaderError redirects clients.
type NotLeaderError struct{ Leader netsim.NodeID }

// Error implements the error interface.
func (e *NotLeaderError) Error() string {
	if e.Leader == "" {
		return "raft: not leader (no leader known)"
	}
	return fmt.Sprintf("raft: not leader; try %s", e.Leader)
}

// ErrNotFound is returned for missing keys.
var ErrNotFound = errors.New("raftkv: key not found")

// ErrNoQuorum is returned when a proposal cannot commit in time.
var ErrNoQuorum = errors.New("raftkv: proposal did not reach quorum")

// ErrRemoved is returned by nodes that know they were removed from the
// configuration.
var ErrRemoved = errors.New("raftkv: node removed from configuration")

// Config configures a Raft group.
type Config struct {
	// Peers is the initial configuration.
	Peers []netsim.NodeID
	// HeartbeatInterval is the leader's replication period.
	HeartbeatInterval time.Duration
	// ElectionTimeoutMin/Max bound the randomized election timeout.
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// RPCTimeout bounds one round trip.
	RPCTimeout time.Duration
	// CommitWait is how long a Put waits for its entry to commit.
	CommitWait time.Duration
	// DeleteLogOnRemoval is the RethinkDB tweak: a replica told it was
	// removed deletes its entire Raft state. Proper Raft (false)
	// retains the log, so the node remembers its removal.
	DeleteLogOnRemoval bool
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 10 * time.Millisecond
	}
	if c.ElectionTimeoutMin == 0 {
		c.ElectionTimeoutMin = 50 * time.Millisecond
	}
	if c.ElectionTimeoutMax == 0 {
		c.ElectionTimeoutMax = 100 * time.Millisecond
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 30 * time.Millisecond
	}
	if c.CommitWait == 0 {
		c.CommitWait = 500 * time.Millisecond
	}
	return c
}

// Node is one Raft server plus its KV state machine.
type Node struct {
	cfg Config
	id  netsim.NodeID
	ep  *transport.Endpoint
	clk clock.Clock

	mu               sync.Mutex
	role             Role
	term             uint64
	votedFor         netsim.NodeID
	leader           netsim.NodeID
	log              []LogEntry // log[i].Index == i+1
	commitIndex      uint64
	lastApplied      uint64
	config           []netsim.NodeID
	removed          bool
	electionDeadline time.Time
	nextIndex        map[netsim.NodeID]uint64
	matchIndex       map[netsim.NodeID]uint64
	data             map[string]string
	stopped          bool

	rng    *rand.Rand
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewNode creates a Raft node, unstarted.
func NewNode(n *netsim.Network, id netsim.NodeID, cfg Config) *Node {
	cfg = cfg.withDefaults()
	ep := transport.NewEndpoint(n, id)
	nd := &Node{
		cfg:    cfg,
		id:     id,
		ep:     ep,
		clk:    ep.Clock(),
		config: append([]netsim.NodeID(nil), cfg.Peers...),
		data:   make(map[string]string),
		rng:    rand.New(rand.NewSource(int64(id.Hash()))),
		stopCh: make(chan struct{}),
	}
	nd.ep.DefaultTimeout = cfg.RPCTimeout
	nd.resetElectionDeadlineLocked()
	nd.ep.Handle(mVote, nd.onRequestVote)
	nd.ep.Handle(mAppend, nd.onAppendEntries)
	nd.ep.Handle(mPut, nd.onPut)
	nd.ep.Handle(mGet, nd.onGet)
	nd.ep.Handle(mStatus, nd.onStatus)
	nd.ep.Handle(mRemove, nd.onAdminRemove)
	nd.ep.Handle(mConfig, nd.onAdminConfig)
	return nd
}

// ID returns the node's ID.
func (nd *Node) ID() netsim.NodeID { return nd.id }

// Start launches the tick loop. The ticker is created here, on the
// caller, so creation (and same-instant firing) order follows the
// deterministic deployment order.
func (nd *Node) Start() {
	nd.wg.Add(1)
	t := nd.clk.NewTicker(nd.cfg.HeartbeatInterval / 2)
	go nd.tickLoop(t)
}

// Stop halts the node.
func (nd *Node) Stop() {
	nd.mu.Lock()
	if nd.stopped {
		nd.mu.Unlock()
		return
	}
	nd.stopped = true
	nd.mu.Unlock()
	close(nd.stopCh)
	nd.wg.Wait()
	nd.ep.Close()
}

// Status returns the node's externally visible state.
func (nd *Node) Status() Status {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return Status{
		ID: nd.id, Role: nd.role, Term: nd.term, Leader: nd.leader,
		LastIndex: nd.lastIndexLocked(), CommitIndex: nd.commitIndex,
		Config: append([]netsim.NodeID(nil), nd.config...), Removed: nd.removed,
	}
}

// Data returns a copy of the applied state machine (for verification).
func (nd *Node) Data() map[string]string {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	out := make(map[string]string, len(nd.data))
	for k, v := range nd.data {
		out[k] = v
	}
	return out
}

// Log returns a copy of the log (for invariant checks).
func (nd *Node) Log() []LogEntry {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return append([]LogEntry(nil), nd.log...)
}

func (nd *Node) lastIndexLocked() uint64 { return uint64(len(nd.log)) }

func (nd *Node) lastTermLocked() uint64 {
	if len(nd.log) == 0 {
		return 0
	}
	return nd.log[len(nd.log)-1].Term
}

func (nd *Node) entryAtLocked(index uint64) (LogEntry, bool) {
	if index == 0 || index > uint64(len(nd.log)) {
		return LogEntry{}, false
	}
	return nd.log[index-1], true
}

func (nd *Node) majorityLocked() int { return len(nd.config)/2 + 1 }

func (nd *Node) inConfigLocked(id netsim.NodeID) bool {
	for _, p := range nd.config {
		if p == id {
			return true
		}
	}
	return false
}

func (nd *Node) peersLocked() []netsim.NodeID {
	out := make([]netsim.NodeID, 0, len(nd.config))
	for _, p := range nd.config {
		if p != nd.id {
			out = append(out, p)
		}
	}
	return out
}

func (nd *Node) resetElectionDeadlineLocked() {
	span := nd.cfg.ElectionTimeoutMax - nd.cfg.ElectionTimeoutMin
	d := nd.cfg.ElectionTimeoutMin + time.Duration(nd.rng.Int63n(int64(span)+1))
	nd.electionDeadline = nd.clk.Now().Add(d)
}

// --- tick loop ---

func (nd *Node) tickLoop(t clock.Ticker) {
	defer nd.wg.Done()
	defer t.Stop()
	clock.TickLoop(nd.clk, t, nd.stopCh, func() {
		nd.mu.Lock()
		role := nd.role
		removed := nd.removed
		expired := nd.clk.Now().After(nd.electionDeadline)
		nd.mu.Unlock()
		if removed {
			return
		}
		if role == LeaderRole {
			nd.broadcastAppend()
		} else if expired {
			nd.startElection()
		}
	})
}

// --- election ---

func (nd *Node) startElection() {
	nd.mu.Lock()
	if nd.role == LeaderRole || nd.stopped || nd.removed {
		nd.mu.Unlock()
		return
	}
	nd.role = Candidate
	nd.term++
	nd.votedFor = nd.id
	nd.leader = ""
	nd.resetElectionDeadlineLocked()
	req := voteReq{
		Term: nd.term, Candidate: nd.id,
		LastLogIndex: nd.lastIndexLocked(), LastLogTerm: nd.lastTermLocked(),
	}
	term := nd.term
	peers := nd.peersLocked()
	needed := nd.majorityLocked()
	nd.mu.Unlock()

	votes := 1
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range peers {
		p := p
		wg.Add(1)
		clock.Go(nd.clk, func() {
			defer wg.Done()
			//neat:allow ambiguity -- votes are term-guarded and idempotent; a lost grant is a missing ack
			resp, err := nd.ep.Call(p, mVote, req, nd.cfg.RPCTimeout)
			if err != nil {
				return
			}
			vr, ok := resp.(voteResp)
			if !ok {
				return
			}
			nd.mu.Lock()
			if vr.Term > nd.term {
				nd.becomeFollowerLocked(vr.Term, "")
			}
			nd.mu.Unlock()
			if vr.Granted {
				mu.Lock()
				votes++
				mu.Unlock()
			}
		})
	}
	clock.Idle(nd.clk, wg.Wait)

	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.role != Candidate || nd.term != term {
		return // the world changed while we campaigned
	}
	if votes >= needed {
		nd.becomeLeaderLocked()
	}
}

func (nd *Node) becomeFollowerLocked(term uint64, leader netsim.NodeID) {
	nd.term = term
	nd.role = Follower
	nd.votedFor = ""
	nd.leader = leader
	nd.resetElectionDeadlineLocked()
}

func (nd *Node) becomeLeaderLocked() {
	nd.role = LeaderRole
	nd.leader = nd.id
	nd.nextIndex = make(map[netsim.NodeID]uint64)
	nd.matchIndex = make(map[netsim.NodeID]uint64)
	next := nd.lastIndexLocked() + 1
	for _, p := range nd.config {
		nd.nextIndex[p] = next
		nd.matchIndex[p] = 0
	}
	// Commit a no-op to settle leadership in this term (Raft §8: a
	// leader cannot conclude older entries are committed until it has
	// committed one entry from its own term).
	nd.log = append(nd.log, LogEntry{
		Index: nd.lastIndexLocked() + 1, Term: nd.term, Kind: EntryNoop,
	})
	if !nd.stopped {
		nd.wg.Add(1)
		clock.Go(nd.clk, func() {
			defer nd.wg.Done()
			nd.broadcastAppend()
		})
	}
}

func (nd *Node) onRequestVote(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(voteReq)
	if !ok {
		return nil, errors.New("bad vote request")
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.removed {
		return voteResp{Term: nd.term, Granted: false}, nil
	}
	if req.Term > nd.term {
		nd.becomeFollowerLocked(req.Term, "")
	}
	granted := false
	if req.Term == nd.term && (nd.votedFor == "" || nd.votedFor == req.Candidate) {
		// Raft §5.4.1 up-to-date check.
		upToDate := req.LastLogTerm > nd.lastTermLocked() ||
			(req.LastLogTerm == nd.lastTermLocked() && req.LastLogIndex >= nd.lastIndexLocked())
		if upToDate {
			granted = true
			nd.votedFor = req.Candidate
			nd.resetElectionDeadlineLocked()
		}
	}
	return voteResp{Term: nd.term, Granted: granted}, nil
}

// --- replication ---

func (nd *Node) broadcastAppend() {
	nd.mu.Lock()
	if nd.role != LeaderRole {
		nd.mu.Unlock()
		return
	}
	peers := nd.peersLocked()
	nd.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range peers {
		p := p
		wg.Add(1)
		clock.Go(nd.clk, func() {
			defer wg.Done()
			nd.replicateTo(p)
		})
	}
	clock.Idle(nd.clk, wg.Wait)
	nd.advanceCommit()
}

func (nd *Node) replicateTo(peer netsim.NodeID) {
	nd.mu.Lock()
	if nd.role != LeaderRole {
		nd.mu.Unlock()
		return
	}
	next := nd.nextIndex[peer]
	if next == 0 {
		next = 1
	}
	prevIndex := next - 1
	var prevTerm uint64
	if e, ok := nd.entryAtLocked(prevIndex); ok {
		prevTerm = e.Term
	}
	var entries []LogEntry
	if nd.lastIndexLocked() >= next {
		entries = append(entries, nd.log[next-1:]...)
	}
	req := appendReq{
		Term: nd.term, Leader: nd.id,
		PrevLogIndex: prevIndex, PrevLogTerm: prevTerm,
		Entries: entries, LeaderCommit: nd.commitIndex,
	}
	nd.mu.Unlock()

	//neat:allow ambiguity -- a timed-out AppendEntries is retried by the next heartbeat; appends are idempotent by (term, index)
	resp, err := nd.ep.Call(peer, mAppend, req, nd.cfg.RPCTimeout)
	if err != nil {
		return
	}
	ar, ok := resp.(appendResp)
	if !ok {
		return
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if ar.Term > nd.term {
		nd.becomeFollowerLocked(ar.Term, "")
		return
	}
	if nd.role != LeaderRole {
		return
	}
	if ar.Success {
		nd.matchIndex[peer] = prevIndex + uint64(len(entries))
		nd.nextIndex[peer] = nd.matchIndex[peer] + 1
		return
	}
	// Conflict: back off, using the follower's hint when available.
	if ar.MatchHint+1 < next {
		nd.nextIndex[peer] = ar.MatchHint + 1
	} else if next > 1 {
		nd.nextIndex[peer] = next - 1
	}
}

// advanceCommit moves commitIndex to the highest index replicated on a
// majority with an entry from the current term (Raft §5.4.2).
func (nd *Node) advanceCommit() {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.role != LeaderRole {
		return
	}
	for n := nd.lastIndexLocked(); n > nd.commitIndex; n-- {
		e, ok := nd.entryAtLocked(n)
		if !ok || e.Term != nd.term {
			continue
		}
		count := 1 // self
		for _, p := range nd.peersLocked() {
			if nd.matchIndex[p] >= n {
				count++
			}
		}
		if count >= nd.majorityLocked() {
			nd.commitIndex = n
			nd.applyLocked()
			break
		}
	}
}

func (nd *Node) applyLocked() {
	for nd.lastApplied < nd.commitIndex {
		nd.lastApplied++
		e := nd.log[nd.lastApplied-1]
		if e.Kind == EntryKV {
			nd.data[e.Key] = e.Val
		}
	}
}

func (nd *Node) onAppendEntries(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(appendReq)
	if !ok {
		return nil, errors.New("bad append")
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.removed {
		return appendResp{Term: nd.term, Success: false}, nil
	}
	if req.Term < nd.term {
		return appendResp{Term: nd.term, Success: false, MatchHint: nd.lastIndexLocked()}, nil
	}
	if req.Term > nd.term || nd.role != Follower {
		nd.becomeFollowerLocked(req.Term, req.Leader)
	}
	nd.leader = req.Leader
	nd.resetElectionDeadlineLocked()

	// Consistency check.
	if req.PrevLogIndex > 0 {
		e, exists := nd.entryAtLocked(req.PrevLogIndex)
		if !exists || e.Term != req.PrevLogTerm {
			hint := nd.lastIndexLocked()
			if hint > req.PrevLogIndex {
				hint = req.PrevLogIndex - 1
			}
			return appendResp{Term: nd.term, Success: false, MatchHint: hint}, nil
		}
	}
	// Append, truncating conflicts.
	for _, entry := range req.Entries {
		if existing, exists := nd.entryAtLocked(entry.Index); exists {
			if existing.Term == entry.Term {
				continue
			}
			nd.log = nd.log[:entry.Index-1] // truncate conflicting suffix
		}
		nd.log = append(nd.log, entry)
	}
	if req.LeaderCommit > nd.commitIndex {
		nd.commitIndex = min64(req.LeaderCommit, nd.lastIndexLocked())
		nd.applyLocked()
	}
	return appendResp{Term: nd.term, Success: true, MatchHint: nd.lastIndexLocked()}, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// --- client operations ---

func (nd *Node) onPut(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(putReq)
	if !ok {
		return nil, errors.New("bad put")
	}
	nd.mu.Lock()
	if nd.removed {
		nd.mu.Unlock()
		return nil, ErrRemoved
	}
	if nd.role != LeaderRole {
		leader := nd.leader
		nd.mu.Unlock()
		return nil, &NotLeaderError{Leader: leader}
	}
	entry := LogEntry{
		Index: nd.lastIndexLocked() + 1, Term: nd.term,
		Kind: EntryKV, Key: req.Key, Val: req.Val,
	}
	nd.log = append(nd.log, entry)
	nd.mu.Unlock()

	// Drive replication until the entry commits or the wait expires.
	deadline := nd.clk.Now().Add(nd.cfg.CommitWait)
	for {
		nd.broadcastAppend()
		nd.mu.Lock()
		committed := nd.commitIndex >= entry.Index && nd.role == LeaderRole
		stillLeader := nd.role == LeaderRole
		nd.mu.Unlock()
		if committed {
			return nil, nil
		}
		if !stillLeader {
			// The entry was appended before the step-down: it may
			// survive in a log and legitimately commit later, so the
			// refusal must not claim the write definitively did not
			// happen. NoQuorum is the honest answer ("commit unknown"),
			// and clients classify it as maybe-executed.
			return nil, ErrNoQuorum
		}
		if nd.clk.Now().After(deadline) {
			return nil, ErrNoQuorum
		}
		nd.clk.Sleep(nd.cfg.HeartbeatInterval / 2)
	}
}

func (nd *Node) onGet(from netsim.NodeID, body any) (any, error) {
	req, ok := body.(getReq)
	if !ok {
		return nil, errors.New("bad get")
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.removed {
		return nil, ErrRemoved
	}
	if nd.role != LeaderRole {
		return nil, &NotLeaderError{Leader: nd.leader}
	}
	v, exists := nd.data[req.Key]
	if !exists {
		return nil, ErrNotFound
	}
	return v, nil
}

func (nd *Node) onStatus(netsim.NodeID, any) (any, error) {
	return nd.Status(), nil
}

// --- administrative membership change (the tweak) ---

// onAdminConfig applies a new configuration directly at this node —
// without consensus — and notifies every REMOVED node it can still
// reach. This is the RethinkDB behaviour.
func (nd *Node) onAdminConfig(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(removeMsg)
	if !ok {
		return nil, errors.New("bad config change")
	}
	nd.mu.Lock()
	oldConfig := nd.config
	nd.config = append([]netsim.NodeID(nil), msg.NewConfig...)
	keep := make(map[netsim.NodeID]bool, len(msg.NewConfig))
	for _, p := range msg.NewConfig {
		keep[p] = true
	}
	if !keep[nd.id] {
		nd.applyRemovalLocked()
	}
	var removed []netsim.NodeID
	for _, p := range oldConfig {
		if !keep[p] && p != nd.id {
			removed = append(removed, p)
		}
	}
	var members []netsim.NodeID
	for _, p := range msg.NewConfig {
		if p != nd.id {
			members = append(members, p)
		}
	}
	nd.mu.Unlock()

	if !msg.Relay {
		// Best-effort notifications: nodes behind the partition never
		// hear about the change — the crux of the failure.
		relay := removeMsg{NewConfig: msg.NewConfig, Relay: true}
		for _, p := range removed {
			//neat:allow ambiguity -- best-effort config relay: nodes behind the partition missing it is the crux of the failure
			_, _ = nd.ep.Call(p, mRemove, relay, nd.cfg.RPCTimeout)
		}
		for _, p := range members {
			//neat:allow ambiguity -- best-effort config relay: nodes behind the partition missing it is the crux of the failure
			_, _ = nd.ep.Call(p, mConfig, relay, nd.cfg.RPCTimeout)
		}
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	return removed, nil
}

// onAdminRemove tells this node it was removed from the configuration.
func (nd *Node) onAdminRemove(from netsim.NodeID, body any) (any, error) {
	msg, ok := body.(removeMsg)
	if !ok {
		return nil, errors.New("bad removal")
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.config = append([]netsim.NodeID(nil), msg.NewConfig...)
	nd.applyRemovalLocked()
	return nil, nil
}

// applyRemovalLocked is where the flawed and proper behaviours differ.
func (nd *Node) applyRemovalLocked() {
	if nd.cfg.DeleteLogOnRemoval {
		// RethinkDB's tweak: wipe everything, including the fact that
		// we were removed. The node is reborn as an empty, willing
		// voter for whoever contacts it — letting the stale
		// configuration keep its quorum.
		nd.log = nil
		nd.data = make(map[string]string)
		nd.commitIndex = 0
		nd.lastApplied = 0
		nd.term = 0
		nd.votedFor = ""
		nd.role = Follower
		nd.leader = ""
		nd.removed = false
		nd.config = append([]netsim.NodeID(nil), nd.cfg.Peers...)
		nd.resetElectionDeadlineLocked()
		return
	}
	// Proper Raft: the removal is durable state. The node stops
	// voting and serving entirely.
	nd.removed = true
	nd.role = Follower
	nd.leader = ""
}
