package raftkv

//neat:allow-file realclock -- real-deadline liveness polls waiting for leader election

import (
	"testing"
	"time"

	"neat/internal/core"
	"neat/internal/netsim"
)

func testConfig(peers []netsim.NodeID) Config {
	return Config{
		Peers:              peers,
		HeartbeatInterval:  10 * time.Millisecond,
		ElectionTimeoutMin: 50 * time.Millisecond,
		ElectionTimeoutMax: 100 * time.Millisecond,
		RPCTimeout:         30 * time.Millisecond,
		CommitWait:         500 * time.Millisecond,
	}
}

var three = []netsim.NodeID{"n1", "n2", "n3"}
var five = []netsim.NodeID{"A", "B", "C", "D", "E"}

type fixture struct {
	eng *core.Engine
	sys *System
	cl  *Client
	cl2 *Client
}

func deploy(t *testing.T, cfg Config) *fixture {
	t.Helper()
	eng := core.NewEngine(core.Options{})
	for _, id := range cfg.Peers {
		eng.AddNode(id, core.RoleServer)
	}
	eng.AddNode("cl", core.RoleClient)
	eng.AddNode("cl2", core.RoleClient)
	sys := NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	f := &fixture{
		eng: eng, sys: sys,
		cl:  NewClient(eng.Network(), "cl", cfg.Peers),
		cl2: NewClient(eng.Network(), "cl2", cfg.Peers),
	}
	t.Cleanup(func() {
		f.cl.Close()
		f.cl2.Close()
		eng.Shutdown()
	})
	return f
}

func (f *fixture) waitLeader(t *testing.T, among []netsim.NodeID) netsim.NodeID {
	t.Helper()
	id := f.sys.WaitForLeaderAmong(among, 3*time.Second)
	if id == "" {
		t.Fatalf("no leader elected among %v", among)
	}
	return id
}

func TestElectsSingleLeader(t *testing.T) {
	f := deploy(t, testConfig(three))
	f.waitLeader(t, three)
	// Settle, then check exactly one leader.
	f.eng.Sleep(100 * time.Millisecond)
	if n := len(f.sys.Leaders()); n != 1 {
		t.Fatalf("leaders = %v, want exactly 1", f.sys.Leaders())
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	f := deploy(t, testConfig(three))
	f.waitLeader(t, three)
	if err := f.cl.Put("k", "v"); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := f.cl.Get("k")
	if err != nil || got != "v" {
		t.Fatalf("get = %q, %v", got, err)
	}
	if _, err := f.cl.Get("missing"); !IsNotFound(err) {
		t.Fatalf("missing = %v", err)
	}
}

func TestCommittedEntriesReachAllStateMachines(t *testing.T) {
	f := deploy(t, testConfig(three))
	f.waitLeader(t, three)
	for i := 0; i < 5; i++ {
		if err := f.cl.Put("k"+string(rune('0'+i)), "v"); err != nil {
			t.Fatal(err)
		}
	}
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		for _, id := range three {
			if len(f.sys.Node(id).Data()) != 5 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("state machines never converged")
	}
}

func TestLeaderFailoverPreservesCommittedData(t *testing.T) {
	f := deploy(t, testConfig(three))
	lead := f.waitLeader(t, three)
	if err := f.cl.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	f.eng.Crash(lead)
	rest := core.Rest(three, []netsim.NodeID{lead})
	f.waitLeader(t, rest)
	got := ""
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		var err error
		got, err = f.cl.Get("k")
		return err == nil
	})
	if !ok || got != "v" {
		t.Fatalf("committed write lost across failover: %q ok=%v", got, ok)
	}
}

func TestMinorityLeaderCannotCommit(t *testing.T) {
	f := deploy(t, testConfig(three))
	lead := f.waitLeader(t, three)
	rest := core.Rest(three, []netsim.NodeID{lead})
	if _, err := f.eng.Complete(
		[]netsim.NodeID{lead, "cl"}, append(rest, "cl2")); err != nil {
		t.Fatal(err)
	}
	// The isolated leader cannot commit: Raft trades availability for
	// consistency on the minority side.
	err := f.cl.PutAt(lead, "k", "v")
	if !IsNoQuorum(err) && err == nil {
		t.Fatalf("minority put = %v, want no-quorum", err)
	}
	// The majority elects and serves.
	f.waitLeader(t, rest)
	if err := f.cl2.Put("k", "majority"); err != nil {
		t.Fatalf("majority put: %v", err)
	}
}

func TestHealedMinorityLeaderStepsDownAndConverges(t *testing.T) {
	f := deploy(t, testConfig(three))
	lead := f.waitLeader(t, three)
	rest := core.Rest(three, []netsim.NodeID{lead})
	if _, err := f.eng.Complete(
		[]netsim.NodeID{lead, "cl"}, append(rest, "cl2")); err != nil {
		t.Fatal(err)
	}
	_ = f.cl.PutAt(lead, "uncommitted", "x") // stays uncommitted
	f.waitLeader(t, rest)
	if err := f.cl2.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := f.eng.HealAll(); err != nil {
		t.Fatal(err)
	}
	// The old leader rejoins, truncates its uncommitted entry, and
	// converges on the majority's history — no divergence survives.
	ok := f.eng.WaitUntil(3*time.Second, func() bool {
		d := f.sys.Node(lead).Data()
		_, hasUncommitted := d["uncommitted"]
		return d["k"] == "v" && !hasUncommitted
	})
	if !ok {
		t.Fatalf("old leader state: %v", f.sys.Node(lead).Data())
	}
}

func TestLogMatchingInvariant(t *testing.T) {
	// Raft's Log Matching property: committed prefixes agree on every
	// node. Exercise with interleaved writes and a partition cycle.
	f := deploy(t, testConfig(three))
	lead := f.waitLeader(t, three)
	for i := 0; i < 3; i++ {
		if err := f.cl.Put("a"+string(rune('0'+i)), "v"); err != nil {
			t.Fatal(err)
		}
	}
	rest := core.Rest(three, []netsim.NodeID{lead})
	p, err := f.eng.Complete(append([]netsim.NodeID{lead}, "cl"), append(rest, "cl2"))
	if err != nil {
		t.Fatal(err)
	}
	f.waitLeader(t, rest)
	for i := 0; i < 3; i++ {
		if err := f.cl2.Put("b"+string(rune('0'+i)), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.eng.Heal(p); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(3*time.Second, func() bool {
		var logs [][]LogEntry
		minCommit := ^uint64(0)
		for _, id := range three {
			logs = append(logs, f.sys.Node(id).Log())
			st := f.sys.Node(id).Status()
			if st.CommitIndex < minCommit {
				minCommit = st.CommitIndex
			}
		}
		if minCommit < 6 {
			return false
		}
		for i := uint64(1); i <= minCommit; i++ {
			ref := logs[0][i-1]
			for _, lg := range logs[1:] {
				if uint64(len(lg)) < i || lg[i-1].Term != ref.Term || lg[i-1].Key != ref.Key {
					return false
				}
			}
		}
		return true
	})
	if !ok {
		t.Fatal("committed log prefixes never converged")
	}
}

// TestRethinkDBConfigChangeSplitBrain reproduces issue #5289 (Section
// 4.4): five replicas, partial partition (A,B) x (D,E) with C seeing
// all. An admin tells D to shrink the replica set to {D,E}; D notifies
// the removed nodes it can reach — only C — and C deletes its Raft
// log, forgetting the removal. A and B still believe C is a replica,
// so the OLD configuration {A..E} retains a quorum (A, B, C) while the
// NEW configuration {D,E} has its own. Both sides commit writes for
// the same key: split brain with acknowledged divergence.
func TestRethinkDBConfigChangeSplitBrain(t *testing.T) {
	cfg := testConfig(five)
	cfg.DeleteLogOnRemoval = true
	f := deploy(t, cfg)
	f.waitLeader(t, five)
	if err := f.cl.Put("k", "before"); err != nil {
		t.Fatal(err)
	}
	// Partial partition: {A,B} cannot reach {D,E}; C reaches everyone.
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"A", "B", "cl"}, []netsim.NodeID{"D", "E", "cl2"}); err != nil {
		t.Fatal(err)
	}
	// Admin asks D to shrink replication to two.
	if err := f.cl2.ChangeConfig("D", []netsim.NodeID{"D", "E"}); err != nil {
		t.Fatal(err)
	}
	// C deleted its log (it is reachable from D); A and B were not
	// notified. Old config {A..E}: A, B, C are 3 of 5 — a quorum.
	oldSide := f.sys.WaitForLeaderAmong([]netsim.NodeID{"A", "B", "C"}, 6*time.Second)
	if oldSide == "" {
		t.Fatal("old configuration never elected a leader")
	}
	// New config {D,E}: quorum of 2.
	newSide := f.sys.WaitForLeaderAmong([]netsim.NodeID{"D", "E"}, 6*time.Second)
	if newSide == "" {
		t.Fatal("new configuration never elected a leader")
	}
	// Both sides COMMIT writes for the same key.
	okOld := f.eng.WaitUntil(5*time.Second, func() bool {
		return f.cl.Put("k", "old-config") == nil
	})
	if !okOld {
		t.Fatal("old-config write never committed")
	}
	okNew := f.eng.WaitUntil(5*time.Second, func() bool {
		return f.cl2.Put("k", "new-config") == nil
	})
	if !okNew {
		t.Fatal("new-config write never committed")
	}
	// Two replica sets for the same keys (the paper's words): verify
	// the acknowledged values diverge. Reads may transiently fail while
	// the old side churns through elections; retry briefly.
	var vOld, vNew string
	if !f.eng.WaitUntil(3*time.Second, func() bool {
		v, err := f.cl.Get("k")
		vOld = v
		return err == nil
	}) {
		t.Fatal("old-config read never succeeded")
	}
	if !f.eng.WaitUntil(3*time.Second, func() bool {
		v, err := f.cl2.Get("k")
		vNew = v
		return err == nil
	}) {
		t.Fatal("new-config read never succeeded")
	}
	if vOld == vNew {
		t.Fatalf("both sides read %q; expected divergent acknowledged values", vOld)
	}
}

// TestProperRemovalPreventsSplitBrain is the control: without the
// delete-log tweak, C remembers it was removed and refuses to vote, so
// the old configuration (A, B alone) has no quorum and never elects.
func TestProperRemovalPreventsSplitBrain(t *testing.T) {
	cfg := testConfig(five)
	cfg.DeleteLogOnRemoval = false
	f := deploy(t, cfg)
	f.waitLeader(t, five)
	if _, err := f.eng.Partial(
		[]netsim.NodeID{"A", "B", "cl"}, []netsim.NodeID{"D", "E", "cl2"}); err != nil {
		t.Fatal(err)
	}
	if err := f.cl2.ChangeConfig("D", []netsim.NodeID{"D", "E"}); err != nil {
		t.Fatal(err)
	}
	// C is removed and knows it. A+B alone are 2 of 5: no quorum.
	deadline := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, id := range []netsim.NodeID{"A", "B", "C"} {
			st := f.sys.Node(id).Status()
			if st.Role == LeaderRole && st.Term > 1 {
				// A pre-partition leader may linger among A/B until its
				// heartbeats fail; what must NOT happen is a fresh
				// election succeeding. C must never lead at all.
				if id == "C" {
					t.Fatal("removed node C became leader")
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	// New config works.
	if f.sys.WaitForLeaderAmong([]netsim.NodeID{"D", "E"}, 3*time.Second) == "" {
		t.Fatal("new configuration never elected")
	}
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		return f.cl2.Put("k", "new") == nil
	})
	if !ok {
		t.Fatal("new-config write never committed")
	}
	// Old side cannot commit anything new.
	if err := f.cl.Put("k", "old"); err == nil {
		t.Fatal("old configuration committed a write without quorum")
	}
}

func TestRemovedNodeRefusesClients(t *testing.T) {
	cfg := testConfig(three)
	cfg.DeleteLogOnRemoval = false
	f := deploy(t, cfg)
	f.waitLeader(t, three)
	if err := f.cl.ChangeConfig("n1", []netsim.NodeID{"n1", "n2"}); err != nil {
		t.Fatal(err)
	}
	ok := f.eng.WaitUntil(2*time.Second, func() bool {
		err := f.cl.PutAt("n3", "k", "v")
		return IsRemoved(err)
	})
	if !ok {
		t.Fatal("removed node kept serving clients")
	}
}

func TestElectionSafetyUnderChurn(t *testing.T) {
	// Repeatedly crash and restart the leader; at no observation point
	// may two nodes claim leadership in the same term.
	f := deploy(t, testConfig(three))
	for round := 0; round < 3; round++ {
		lead := f.waitLeader(t, three)
		terms := make(map[uint64][]netsim.NodeID)
		for _, id := range three {
			st := f.sys.Node(id).Status()
			if st.Role == LeaderRole {
				terms[st.Term] = append(terms[st.Term], id)
			}
		}
		for term, leaders := range terms {
			if len(leaders) > 1 {
				t.Fatalf("term %d has leaders %v", term, leaders)
			}
		}
		f.eng.Crash(lead)
		f.waitLeader(t, core.Rest(three, []netsim.NodeID{lead}))
		f.eng.Restart(lead)
	}
}
