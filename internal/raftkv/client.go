package raftkv

import (
	"errors"
	"strings"
	"time"

	"neat/internal/netsim"
	"neat/internal/transport"
)

// Client is a Raft KV client that follows leader redirects among the
// replicas reachable from its host.
type Client struct {
	ep      *transport.Endpoint
	peers   []netsim.NodeID
	timeout time.Duration
}

// NewClient attaches a client to the fabric.
func NewClient(n *netsim.Network, id netsim.NodeID, peers []netsim.NodeID) *Client {
	return &Client{
		ep:      transport.NewEndpoint(n, id),
		peers:   peers,
		timeout: 600 * time.Millisecond, // covers a CommitWait
	}
}

// ID returns the client's node ID.
func (c *Client) ID() netsim.NodeID { return c.ep.ID() }

// SetTimeout overrides the per-call timeout. Fuzzing harnesses lower
// it so rounds spent against unreachable peers stay short.
func (c *Client) SetTimeout(d time.Duration) {
	if d > 0 {
		c.timeout = d
	}
}

// Close detaches the client.
func (c *Client) Close() { c.ep.Close() }

// MaybeExecuted reports whether the failed operation may still take
// effect: a transport-level failure may have reached a leader that
// appended the entry, and a no-quorum answer means the leader
// appended it to its own log before giving up on commit — in both
// cases the entry can survive and commit later. Only pure redirect
// exhaustion ("not leader" everywhere) guarantees nothing was
// appended.
func MaybeExecuted(err error) bool {
	return transport.MaybeExecuted(err) || IsNoQuorum(err)
}

func (c *Client) do(method string, body any) (any, error) {
	tried := make(map[netsim.NodeID]bool)
	queue := append([]netsim.NodeID(nil), c.peers...)
	// maybe records whether any attempt failed at the transport level:
	// a leader may have appended the entry with only the reply lost.
	maybe := false
	wrap := func(err error) error {
		if maybe {
			return transport.MarkMaybeExecuted(err)
		}
		return err
	}
	var lastErr error = errors.New("raftkv: no peers")
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		if tried[node] {
			continue
		}
		tried[node] = true
		resp, err := c.ep.Call(node, method, body, c.timeout)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if hint, ok := redirectHint(err); ok {
			if hint != "" && !tried[hint] {
				queue = append([]netsim.NodeID{hint}, queue...)
			}
			continue
		}
		if IsNotFound(err) || IsNoQuorum(err) {
			return nil, wrap(err) // definitive answers from a leader
		}
		if !transport.IsRemote(err) {
			// Transport failure: the peer may have executed the request
			// with only the reply lost.
			maybe = true
		}
	}
	return nil, wrap(lastErr)
}

func redirectHint(err error) (netsim.NodeID, bool) {
	var re *transport.RemoteError
	if !errors.As(err, &re) {
		return "", false
	}
	const mark = "raft: not leader"
	if !strings.HasPrefix(re.Msg, mark) {
		return "", false
	}
	const try = "try "
	if i := strings.LastIndex(re.Msg, try); i >= 0 {
		return netsim.NodeID(re.Msg[i+len(try):]), true
	}
	return "", true
}

// Put writes key=val through the current leader, waiting for commit.
func (c *Client) Put(key, val string) error {
	_, err := c.do(mPut, putReq{Key: key, Val: val})
	return err
}

// Get reads key from the current leader.
func (c *Client) Get(key string) (string, error) {
	resp, err := c.do(mGet, getReq{Key: key})
	if err != nil {
		return "", err
	}
	s, _ := resp.(string)
	return s, nil
}

// PutAt writes directly at one node without redirects (for partition
// tests).
func (c *Client) PutAt(node netsim.NodeID, key, val string) error {
	_, err := c.ep.Call(node, mPut, putReq{Key: key, Val: val}, c.timeout)
	return err
}

// GetAt reads directly from one node.
func (c *Client) GetAt(node netsim.NodeID, key string) (string, error) {
	resp, err := c.ep.Call(node, mGet, getReq{Key: key}, c.timeout)
	if err != nil {
		return "", err
	}
	s, _ := resp.(string)
	return s, nil
}

// ChangeConfig sends an administrative membership change to one node,
// which applies it directly (the RethinkDB admin path).
func (c *Client) ChangeConfig(target netsim.NodeID, newConfig []netsim.NodeID) error {
	_, err := c.ep.Call(target, mConfig, removeMsg{NewConfig: newConfig}, c.timeout)
	return err
}

// StatusOf fetches one node's status.
func (c *Client) StatusOf(node netsim.NodeID) (Status, error) {
	resp, err := c.ep.Call(node, mStatus, nil, c.timeout)
	if err != nil {
		return Status{}, err
	}
	st, _ := resp.(Status)
	return st, nil
}

// IsNotFound reports whether err is a missing key.
func IsNotFound(err error) bool { return remoteIs(err, ErrNotFound) }

// IsNoQuorum reports whether err is a failed commit.
func IsNoQuorum(err error) bool { return remoteIs(err, ErrNoQuorum) }

// IsRemoved reports whether err came from a removed node.
func IsRemoved(err error) bool { return remoteIs(err, ErrRemoved) }

func remoteIs(err error, target error) bool {
	if errors.Is(err, target) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && re.Msg == target.Error()
}
