package history

import (
	"strings"
	"testing"
)

// supersedesByPrefix is a toy supersession order for tests: survivor
// aux "dominates:x,y" supersedes acked aux "x" or "y".
func supersedesByPrefix(survivorAux, ackedAux string) bool {
	const mark = "dominates:"
	if !strings.HasPrefix(survivorAux, mark) {
		return false
	}
	for _, a := range strings.Split(survivorAux[len(mark):], "+") {
		if a == ackedAux {
			return true
		}
	}
	return false
}

func versionsRead(i int, node, vals, aux string) Op {
	return Op{Index: i, Kind: "versions", Client: "c1", Key: "ek", Node: node,
		Output: vals, Aux: aux, Outcome: Ok, Invoke: ms(2 * i), Return: ms(2*i + 1)}
}

func faultedPut(i int, client, val, aux string) Op {
	return Op{Index: i, Kind: "put", Client: client, Key: "ek", Input: val, Aux: aux,
		Outcome: Ok, Faults: 1, Invoke: ms(2 * i), Return: ms(2*i + 1)}
}

func convergeSpec() ConvergeSpec {
	return ConvergeSpec{
		ReadKind:          "versions",
		DisagreeInvariant: "convergence",
		WriteKind:         "put",
		OnlyFaulted:       true,
		Supersedes:        supersedesByPrefix,
	}
}

// TestConvergenceAgreedAndSuperseded: the golden known-good history —
// replicas agree, and the missing acknowledged write is causally
// dominated by a survivor.
func TestConvergenceAgreedAndSuperseded(t *testing.T) {
	h := History{
		faultedPut(0, "c1", "v1", "a"),
		versionsRead(1, "e1", "v2", "dominates:a"),
		versionsRead(2, "e2", "v2", "dominates:a"),
	}
	wantNone(t, Convergence(convergeSpec())(h))
}

// TestConvergenceDiverged: the known-violating history — replicas
// never reconciled onto one sibling set.
func TestConvergenceDiverged(t *testing.T) {
	h := History{
		faultedPut(0, "c1", "v1", "a"),
		versionsRead(1, "e1", "v1", "a"),
		versionsRead(2, "e2", "v2", "b"),
	}
	v := wantOne(t, Convergence(convergeSpec())(h), "convergence", "ek")
	if len(v.Witness) != 2 {
		t.Fatalf("divergence witness should name the disagreeing reads, got %v", v.Witness)
	}
}

// TestConvergenceConsolidatedAway: replicas agree, but the surviving
// version is concurrent with the missing acknowledged write — the
// last-writer-wins data loss.
func TestConvergenceConsolidatedAway(t *testing.T) {
	h := History{
		faultedPut(0, "c1", "v1", "a"),
		faultedPut(1, "c2", "v2", "b"),
		versionsRead(2, "e1", "v2", "b"),
		versionsRead(3, "e2", "v2", "b"),
	}
	// c1's v1 is missing and "b" does not dominate "a": data loss.
	// c2's v2 survives.
	wantOne(t, Convergence(convergeSpec())(h), "acked-write-survives", "ek")
}

// TestConvergenceSurvivingSiblings: vector causality keeps both
// concurrent writes as siblings — nothing is lost.
func TestConvergenceSurvivingSiblings(t *testing.T) {
	h := History{
		faultedPut(0, "c1", "v1", "a"),
		faultedPut(1, "c2", "v2", "b"),
		versionsRead(2, "e1", "v1,v2", "a;b"),
		versionsRead(3, "e2", "v1,v2", "a;b"),
	}
	wantNone(t, Convergence(convergeSpec())(h))
}

// TestConvergenceUnfaultedWritesNotJudged: with OnlyFaulted, a write
// acknowledged on a healthy network and later superseded by a
// subsequent write is outside the check's scope.
func TestConvergenceUnfaultedWritesNotJudged(t *testing.T) {
	h := History{
		{Index: 0, Kind: "put", Client: "c1", Key: "ek", Input: "v1", Aux: "a",
			Outcome: Ok, Invoke: ms(0), Return: ms(1)},
		versionsRead(1, "e1", "v2", "b"),
		versionsRead(2, "e2", "v2", "b"),
	}
	wantNone(t, Convergence(convergeSpec())(h))
}

// TestConvergenceLastReadPerNodeWins: only each replica's final
// observation counts — earlier divergent polls are superseded.
func TestConvergenceLastReadPerNodeWins(t *testing.T) {
	h := History{
		versionsRead(0, "e1", "v1", "a"),
		versionsRead(1, "e2", "v2", "b"),
		versionsRead(2, "e1", "v2", "b"),
		// e1's second read agrees with e2's only read.
		versionsRead(3, "e2", "v2", "b"),
	}
	wantNone(t, Convergence(convergeSpec())(h))
}

// TestReplicaAgreementSingleValues: the objstore shape — per-replica
// single-value reads with no supersession semantics.
func TestReplicaAgreementSingleValues(t *testing.T) {
	spec := ConvergeSpec{ReadKind: "read", DisagreeInvariant: "replica-agreement"}
	agree := History{
		{Index: 0, Kind: "read", Client: "c1", Key: "obj1", Node: "o1", Output: "x", Outcome: Ok, Invoke: ms(0), Return: ms(1)},
		{Index: 1, Kind: "read", Client: "c1", Key: "obj1", Node: "o2", Output: "x", Outcome: Ok, Invoke: ms(2), Return: ms(3)},
	}
	wantNone(t, Convergence(spec)(agree))

	diverged := History{
		agree[0],
		{Index: 1, Kind: "read", Client: "c1", Key: "obj1", Node: "o2", Outcome: Ok, Note: "missing", Invoke: ms(2), Return: ms(3)},
		// An unreachable replica contributes nothing.
		{Index: 2, Kind: "read", Client: "c1", Key: "obj1", Node: "o3", Outcome: Failed, Invoke: ms(4), Return: ms(5)},
	}
	wantOne(t, Convergence(spec)(diverged), "replica-agreement", "obj1")
}
