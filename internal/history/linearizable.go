package history

import (
	"fmt"
	"math"
	"time"
)

// RegisterSpec parameterizes the register linearizability checker.
// Zero values select the canonical kinds.
type RegisterSpec struct {
	// WriteKind sets the register to Input ("put").
	WriteKind string
	// DeleteKind sets the register to absent ("del").
	DeleteKind string
	// ReadKind observes the register ("get"); an Ok read with
	// MissingNote observed absence.
	ReadKind string
	// MissingNote marks an Ok read that found no value ("missing").
	MissingNote string
}

func (s *RegisterSpec) defaults() {
	if s.WriteKind == "" {
		s.WriteKind = "put"
	}
	if s.DeleteKind == "" {
		s.DeleteKind = "del"
	}
	if s.ReadKind == "" {
		s.ReadKind = "get"
	}
	if s.MissingNote == "" {
		s.MissingNote = "missing"
	}
}

// Registers returns the key-partitioned register linearizability
// check: each key is an independent register, judged by a Wing & Gong
// search over the permutations of its operations that respect
// real-time order, with memoized visited-state deduplication so the
// search stays fast at campaign throughput.
//
// Outcome semantics:
//
//   - Ok writes took effect somewhere inside their invocation window
//     and must be explainable by every read.
//   - Failed writes never took effect; a read observing one is a
//     "dirty-read" violation (the value escaped a definitive refusal).
//   - Ambiguous writes may have taken effect at any point at or after
//     their invocation — or never. The search treats them as optional
//     with an open-ended window. (A visible ambiguous write is not a
//     linearizability violation; SilentWrites reports those.)
//   - Only Ok reads constrain the search; failed reads observed
//     nothing.
//
// A history that cannot be linearized yields a "durability" violation
// per offending read: an acknowledged write was lost, rolled back, or
// reordered out of existence. Every violation carries a witness trace.
func Registers(spec RegisterSpec) Check {
	spec.defaults()
	return func(h History) []Violation {
		var out []Violation
		for _, key := range h.Keys(spec.WriteKind, spec.DeleteKind, spec.ReadKind) {
			out = append(out, checkRegister(spec, key, h.ForKey(key))...)
		}
		return out
	}
}

// regItem is one searchable event of a register's history.
type regItem struct {
	op       Op
	read     bool
	val      string // written or observed value
	absent   bool   // delete-write or missing-read
	optional bool   // ambiguous write: may never take effect
	inv, ret time.Duration
}

const infDur = time.Duration(math.MaxInt64)

func checkRegister(spec RegisterSpec, key string, h History) []Violation {
	var writes []regItem
	var reads []regItem
	// failedWrites maps a definitively refused value to its op, for
	// dirty-read witnesses.
	failedWrites := make(map[string]Op)
	for _, op := range h {
		switch op.Kind {
		case spec.WriteKind, spec.DeleteKind:
			it := regItem{op: op, val: op.Input, absent: op.Kind == spec.DeleteKind, inv: op.Invoke, ret: op.Return}
			switch op.Outcome {
			case Ok:
				writes = append(writes, it)
			case Ambiguous:
				it.optional = true
				it.ret = infDur
				writes = append(writes, it)
			default:
				if !it.absent {
					failedWrites[op.Input] = op
				}
			}
		case spec.ReadKind:
			if op.Outcome != Ok {
				continue
			}
			it := regItem{op: op, read: true, val: op.Output, absent: op.Note == spec.MissingNote, inv: op.Invoke, ret: op.Return}
			reads = append(reads, it)
		}
	}
	var out []Violation

	// Dirty pass: a read observing a value no Ok or Ambiguous write
	// ever wrote cannot be linearized at all — either the value leaked
	// out of a definitively failed write or it was fabricated. Judged
	// first and removed so the search below only arbitrates ordering.
	written := make(map[string]bool)
	for _, w := range writes {
		if !w.absent {
			written[w.val] = true
		}
	}
	clean := reads[:0:0]
	for _, r := range reads {
		if r.absent || written[r.val] {
			clean = append(clean, r)
			continue
		}
		wops := []Op{r.op}
		detail := fmt.Sprintf("read %q, a value no acknowledged or ambiguous write produced", r.val)
		if w, ok := failedWrites[r.val]; ok {
			wops = append(wops, w)
			detail = fmt.Sprintf("read %q, written by op #%d that was definitively refused (%s)", r.val, w.Index, w.Outcome)
		}
		out = append(out, Violation{
			Invariant: "dirty-read",
			Subject:   key,
			Detail:    detail,
			Witness:   witness(wops...),
		})
	}
	reads = clean

	// Linearizability search. When the full history fails, the first
	// read (in invocation order) whose inclusion breaks it is the
	// offender: an acknowledged write it should have observed was
	// lost or rolled back. Offenders are reported and excluded, then
	// the search continues, so several independent stale reads each
	// get a violation.
	if linearizable(writes, reads) {
		return out
	}
	var kept []regItem
	for _, r := range reads {
		if linearizable(writes, append(kept[:len(kept):len(kept)], r)) {
			kept = append(kept, r)
			continue
		}
		out = append(out, staleReadViolation(key, writes, r))
	}
	return out
}

// staleReadViolation describes a read that cannot be reconciled with
// the acknowledged writes: the freshest write that completed before
// the read began should have been visible (or superseded by a newer
// value), yet the read observed older or absent state.
func staleReadViolation(key string, writes []regItem, r regItem) Violation {
	wops := []Op{r.op}
	// The newest acknowledged write that returned before the read
	// began: its effect was guaranteed stable when the read started.
	var newest *regItem
	for i := range writes {
		w := &writes[i]
		if w.optional || w.ret > r.inv {
			continue
		}
		if newest == nil || w.op.Index > newest.op.Index {
			newest = w
		}
	}
	observed := fmt.Sprintf("%q", r.val)
	if r.absent {
		observed = "no value"
	}
	detail := fmt.Sprintf("read observed %s, which cannot be linearized against the acknowledged writes", observed)
	if newest != nil {
		wops = append(wops, newest.op)
		detail = fmt.Sprintf("read observed %s after write %q (#%d) was acknowledged — the write was lost or rolled back",
			observed, newest.val, newest.op.Index)
	}
	// The write that produced the stale value, when identifiable.
	for i := range writes {
		if !r.absent && writes[i].val == r.val {
			wops = append(wops, writes[i].op)
			break
		}
	}
	return Violation{Invariant: "durability", Subject: key, Detail: detail, Witness: witness(wops...)}
}

// linearizable runs the Wing & Gong membership search: is there a
// total order of the items, respecting real-time precedence, under
// which every read observes the latest preceding write? Ambiguous
// (optional) writes may be omitted — "never applied" is a legal
// explanation for them. Visited states are memoized on the
// (linearized-set, register-value) pair, which collapses the
// exponential search to the number of distinct reachable states.
func linearizable(writes, reads []regItem) bool {
	items := make([]regItem, 0, len(writes)+len(reads))
	items = append(items, writes...)
	items = append(items, reads...)
	n := len(items)
	if n == 0 {
		return true
	}
	words := (n + 63) / 64
	type state struct {
		mask []uint64
		val  string
		abs  bool
	}
	full := func(mask []uint64) bool {
		for i := 0; i < n; i++ {
			if mask[i/64]&(1<<(i%64)) == 0 && !items[i].optional {
				return false
			}
		}
		return true
	}
	keyOf := func(s state) string {
		b := make([]byte, 0, words*8+len(s.val)+2)
		for _, w := range s.mask {
			for i := 0; i < 8; i++ {
				b = append(b, byte(w>>(8*i)))
			}
		}
		if s.abs {
			b = append(b, 1)
		} else {
			b = append(b, 0, '|')
			b = append(b, s.val...)
		}
		return string(b)
	}
	visited := make(map[string]bool)
	var dfs func(s state) bool
	dfs = func(s state) bool {
		if full(s.mask) {
			return true
		}
		k := keyOf(s)
		if visited[k] {
			return false
		}
		visited[k] = true
		// An item may be linearized next only if no pending item
		// returned before it was invoked (real-time precedence).
		minRet := infDur
		for i := 0; i < n; i++ {
			if s.mask[i/64]&(1<<(i%64)) == 0 && items[i].ret < minRet {
				minRet = items[i].ret
			}
		}
		for i := 0; i < n; i++ {
			if s.mask[i/64]&(1<<(i%64)) != 0 {
				continue
			}
			it := &items[i]
			if it.inv > minRet {
				continue
			}
			if it.read && (it.absent != s.abs || (!it.absent && it.val != s.val)) {
				continue
			}
			next := state{mask: append([]uint64(nil), s.mask...), val: s.val, abs: s.abs}
			next.mask[i/64] |= 1 << (i % 64)
			if !it.read {
				next.val, next.abs = it.val, it.absent
			}
			if dfs(next) {
				return true
			}
		}
		return false
	}
	return dfs(state{mask: make([]uint64, words), abs: true})
}
