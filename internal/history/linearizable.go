package history

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"neat/internal/clock"
)

// RegisterSpec parameterizes the register linearizability checker.
// Zero values select the canonical kinds.
type RegisterSpec struct {
	// WriteKind sets the register to Input ("put").
	WriteKind string
	// DeleteKind sets the register to absent ("del").
	DeleteKind string
	// ReadKind observes the register ("get"); an Ok read with
	// MissingNote observed absence.
	ReadKind string
	// MissingNote marks an Ok read that found no value ("missing").
	MissingNote string
}

func (s *RegisterSpec) defaults() {
	if s.WriteKind == "" {
		s.WriteKind = "put"
	}
	if s.DeleteKind == "" {
		s.DeleteKind = "del"
	}
	if s.ReadKind == "" {
		s.ReadKind = "get"
	}
	if s.MissingNote == "" {
		s.MissingNote = "missing"
	}
}

// Registers returns the key-partitioned register linearizability
// check: each key is an independent register, judged by a Wing & Gong
// search over the permutations of its operations that respect
// real-time order, with memoized visited-state deduplication so the
// search stays fast at campaign throughput.
//
// Outcome semantics:
//
//   - Ok writes took effect somewhere inside their invocation window
//     and must be explainable by every read.
//   - Failed writes never took effect; a read observing one is a
//     "dirty-read" violation (the value escaped a definitive refusal).
//   - Ambiguous writes may have taken effect at any point at or after
//     their invocation — or never. The search treats them as optional
//     with an open-ended window. (A visible ambiguous write is not a
//     linearizability violation; SilentWrites reports those.)
//   - Only Ok reads constrain the search; failed reads observed
//     nothing.
//
// A history that cannot be linearized yields a "durability" violation
// per offending read: an acknowledged write was lost, rolled back, or
// reordered out of existence. Every violation carries a witness trace.
func Registers(spec RegisterSpec) Check {
	spec.defaults()
	return func(h History) []Violation {
		keys := h.Keys(spec.WriteKind, spec.DeleteKind, spec.ReadKind)
		var out []Violation
		for _, vs := range checkRegistersParallel(spec, h, keys) {
			out = append(out, vs...)
		}
		return out
	}
}

// parallelCheckMinOps gates the parallel per-key fan-out: below this
// many recorded operations the goroutine handoff costs more than the
// search itself.
const parallelCheckMinOps = 64

// checkRegistersParallel runs the per-key register checks across up to
// GOMAXPROCS workers and returns the results slotted by key index, so
// the merged violation order is always the key-appearance order
// regardless of which worker finished first — the determinism
// contract. The workers are pure computation over an already-recorded
// history and never touch a clock, so they run as plain unaccounted
// goroutines via clock.Go with the real clock (which carries no busy
// accounting to bind them to).
func checkRegistersParallel(spec RegisterSpec, h History, keys []string) [][]Violation {
	out := make([][]Violation, len(keys))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(keys) {
		workers = len(keys)
	}
	if workers <= 1 || len(h) < parallelCheckMinOps {
		for i, key := range keys {
			out[i] = checkRegister(spec, key, h.ForKey(key))
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//neat:allow checkerpurity -- pure per-key fan-out on clock.Real{} (no busy accounting); slotted output keeps merge order deterministic
		clock.Go(clock.Real{}, func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(keys) {
					return
				}
				out[i] = checkRegister(spec, keys[i], h.ForKey(keys[i]))
			}
		})
	}
	wg.Wait()
	return out
}

// regItem is one searchable event of a register's history.
type regItem struct {
	op       Op
	read     bool
	val      string // written or observed value
	absent   bool   // delete-write or missing-read
	optional bool   // ambiguous write: may never take effect
	inv, ret time.Duration
}

const infDur = time.Duration(math.MaxInt64)

func checkRegister(spec RegisterSpec, key string, h History) []Violation {
	// Exact-size the item slices: per-key slice churn is the checker's
	// dominant allocation source at campaign throughput.
	nw, nr := 0, 0
	for i := range h {
		switch h[i].Kind {
		case spec.WriteKind, spec.DeleteKind:
			nw++
		case spec.ReadKind:
			nr++
		}
	}
	writes := make([]regItem, 0, nw)
	reads := make([]regItem, 0, nr)
	// failedWrites maps a definitively refused value to its op, for
	// dirty-read witnesses. Built lazily: most histories have none.
	var failedWrites map[string]Op
	for _, op := range h {
		switch op.Kind {
		case spec.WriteKind, spec.DeleteKind:
			it := regItem{op: op, val: op.Input, absent: op.Kind == spec.DeleteKind, inv: op.Invoke, ret: op.Return}
			switch op.Outcome {
			case Ok:
				writes = append(writes, it)
			case Ambiguous:
				it.optional = true
				it.ret = infDur
				writes = append(writes, it)
			default:
				if !it.absent {
					if failedWrites == nil {
						failedWrites = make(map[string]Op)
					}
					failedWrites[op.Input] = op
				}
			}
		case spec.ReadKind:
			if op.Outcome != Ok {
				continue
			}
			it := regItem{op: op, read: true, val: op.Output, absent: op.Note == spec.MissingNote, inv: op.Invoke, ret: op.Return}
			reads = append(reads, it)
		}
	}
	var out []Violation

	// Dirty pass: a read observing a value no Ok or Ambiguous write
	// ever wrote cannot be linearized at all — either the value leaked
	// out of a definitively failed write or it was fabricated. Judged
	// first and removed so the search below only arbitrates ordering.
	// A linear scan over the writes replaces a written-values map: the
	// per-key write count is small and the scan allocates nothing.
	written := func(val string) bool {
		for i := range writes {
			if !writes[i].absent && writes[i].val == val {
				return true
			}
		}
		return false
	}
	clean := reads[:0]
	for _, r := range reads {
		if r.absent || written(r.val) {
			clean = append(clean, r)
			continue
		}
		wops := []Op{r.op}
		detail := fmt.Sprintf("read %q, a value no acknowledged or ambiguous write produced", r.val)
		if w, ok := failedWrites[r.val]; ok {
			wops = append(wops, w)
			detail = fmt.Sprintf("read %q, written by op #%d that was definitively refused (%s)", r.val, w.Index, w.Outcome)
		}
		out = append(out, Violation{
			Invariant: "dirty-read",
			Subject:   key,
			Detail:    detail,
			Witness:   witness(wops...),
		})
	}
	reads = clean

	// Linearizability search. When the full history fails, the first
	// read (in invocation order) whose inclusion breaks it is the
	// offender: an acknowledged write it should have observed was
	// lost or rolled back. Offenders are reported and excluded, then
	// the search continues, so several independent stale reads each
	// get a violation.
	if linearizable(writes, reads) {
		return out
	}
	var kept []regItem
	for _, r := range reads {
		if linearizable(writes, append(kept[:len(kept):len(kept)], r)) {
			kept = append(kept, r)
			continue
		}
		out = append(out, staleReadViolation(key, writes, r))
	}
	return out
}

// staleReadViolation describes a read that cannot be reconciled with
// the acknowledged writes: the freshest write that completed before
// the read began should have been visible (or superseded by a newer
// value), yet the read observed older or absent state.
func staleReadViolation(key string, writes []regItem, r regItem) Violation {
	wops := []Op{r.op}
	// The newest acknowledged write that returned before the read
	// began: its effect was guaranteed stable when the read started.
	var newest *regItem
	for i := range writes {
		w := &writes[i]
		if w.optional || w.ret > r.inv {
			continue
		}
		if newest == nil || w.op.Index > newest.op.Index {
			newest = w
		}
	}
	observed := fmt.Sprintf("%q", r.val)
	if r.absent {
		observed = "no value"
	}
	detail := fmt.Sprintf("read observed %s, which cannot be linearized against the acknowledged writes", observed)
	if newest != nil {
		wops = append(wops, newest.op)
		detail = fmt.Sprintf("read observed %s after write %q (#%d) was acknowledged — the write was lost or rolled back",
			observed, newest.val, newest.op.Index)
	}
	// The write that produced the stale value, when identifiable.
	for i := range writes {
		if !r.absent && writes[i].val == r.val {
			wops = append(wops, writes[i].op)
			break
		}
	}
	return Violation{Invariant: "durability", Subject: key, Detail: detail, Witness: witness(wops...)}
}

// linearizable runs the Wing & Gong membership search: is there a
// total order of the items, respecting real-time precedence, under
// which every read observes the latest preceding write? Ambiguous
// (optional) writes may be omitted — "never applied" is a legal
// explanation for them. Visited states are memoized on the
// (linearized-set, register-value) pair, which collapses the
// exponential search to the number of distinct reachable states.
//
// The memo key is allocation-free: register values are interned to
// small integer ids up front (0 = absent), so a state is the
// fixed-width pair (bitmask, value id). Histories of at most 128
// items — every campaign-scale per-key history — use a comparable
// struct key in a map[regState]struct{} with value-type states, which
// allocates nothing per visited state beyond the map's own growth.
// Longer histories fall back to a width-generic search whose keys are
// fixed-width binary encodings built in a reused buffer (lookups
// convert without allocating; only inserts copy) and whose masks come
// from a free list, so allocations stay bounded by the search depth,
// not the state count.
func linearizable(writes, reads []regItem) bool {
	n := len(writes) + len(reads)
	if n == 0 {
		return true
	}
	items := make([]regItem, 0, n)
	items = append(items, writes...)
	items = append(items, reads...)

	// Intern register values: states then compare by a fixed-width id
	// instead of a string. Id 0 is the absent register.
	valID := make(map[string]int32, n)
	ids := make([]int32, n)
	for i := range items {
		if items[i].absent {
			continue
		}
		id, ok := valID[items[i].val]
		if !ok {
			id = int32(len(valID)) + 1
			valID[items[i].val] = id
		}
		ids[i] = id
	}
	if n <= 128 {
		return linearizableNarrow(items, ids)
	}
	return linearizableWide(items, ids)
}

// regState is the memo key of the narrow (≤128 item) search: the
// linearized-set bitmask and the interned register value (0 = absent).
type regState struct {
	m0, m1 uint64
	val    int32
}

func (s *regState) has(i int) bool {
	if i < 64 {
		return s.m0&(1<<uint(i)) != 0
	}
	return s.m1&(1<<uint(i-64)) != 0
}

func (s *regState) set(i int) {
	if i < 64 {
		s.m0 |= 1 << uint(i)
	} else {
		s.m1 |= 1 << uint(i-64)
	}
}

func linearizableNarrow(items []regItem, ids []int32) bool {
	n := len(items)
	// required holds the non-optional items; a state is complete when
	// its mask covers it.
	var required regState
	for i := range items {
		if !items[i].optional {
			required.set(i)
		}
	}
	visited := make(map[regState]struct{}, 4*n)
	var dfs func(s regState) bool
	dfs = func(s regState) bool {
		// Greedily linearize every eligible read that matches the
		// current register: a read has no effect on the value, and
		// removing it from the pending set only relaxes the precedence
		// constraint on everything else, so taking it first loses no
		// solutions. This collapses the branching to writes only.
		// minRet is the real-time precedence bound: an item may be
		// linearized next only if no pending item returned before it
		// was invoked.
		minRet := infDur
		for {
			minRet = infDur
			for i := 0; i < n; i++ {
				if !s.has(i) && items[i].ret < minRet {
					minRet = items[i].ret
				}
			}
			folded := false
			for i := 0; i < n; i++ {
				if !s.has(i) && items[i].read && ids[i] == s.val && items[i].inv <= minRet {
					s.set(i)
					folded = true
				}
			}
			if !folded {
				break
			}
		}
		if s.m0&required.m0 == required.m0 && s.m1&required.m1 == required.m1 {
			return true
		}
		if _, seen := visited[s]; seen {
			return false
		}
		visited[s] = struct{}{}
		for i := 0; i < n; i++ {
			if s.has(i) {
				continue
			}
			it := &items[i]
			if it.read || it.inv > minRet {
				continue
			}
			next := s
			next.set(i)
			next.val = ids[i]
			if dfs(next) {
				return true
			}
		}
		return false
	}
	return dfs(regState{})
}

func linearizableWide(items []regItem, ids []int32) bool {
	n := len(items)
	words := (n + 63) / 64
	required := make([]uint64, words)
	for i := range items {
		if !items[i].optional {
			required[i/64] |= 1 << uint(i%64)
		}
	}
	full := func(mask []uint64) bool {
		for w := range mask {
			if mask[w]&required[w] != required[w] {
				return false
			}
		}
		return true
	}
	keyBuf := make([]byte, words*8+4)
	encode := func(mask []uint64, val int32) []byte {
		for w, m := range mask {
			binary.LittleEndian.PutUint64(keyBuf[w*8:], m)
		}
		binary.LittleEndian.PutUint32(keyBuf[words*8:], uint32(val))
		return keyBuf
	}
	visited := make(map[string]struct{}, 4*n)
	// Masks live only on the recursion path, so a free list caps their
	// allocations at the search depth.
	var free [][]uint64
	copyMask := func(src []uint64) []uint64 {
		if k := len(free); k > 0 {
			m := free[k-1]
			free = free[:k-1]
			copy(m, src)
			return m
		}
		return append(make([]uint64, 0, words), src...)
	}
	var dfs func(mask []uint64, val int32) bool
	dfs = func(mask []uint64, val int32) bool {
		// Greedy read folding, as in the narrow search: eligible
		// matching reads are linearized immediately (sound, see
		// linearizableNarrow), leaving only writes to branch on.
		minRet := infDur
		for {
			minRet = infDur
			for i := 0; i < n; i++ {
				if mask[i/64]&(1<<uint(i%64)) == 0 && items[i].ret < minRet {
					minRet = items[i].ret
				}
			}
			folded := false
			for i := 0; i < n; i++ {
				if mask[i/64]&(1<<uint(i%64)) == 0 && items[i].read && ids[i] == val && items[i].inv <= minRet {
					mask[i/64] |= 1 << uint(i%64)
					folded = true
				}
			}
			if !folded {
				break
			}
		}
		if full(mask) {
			return true
		}
		k := encode(mask, val)
		if _, seen := visited[string(k)]; seen {
			return false
		}
		visited[string(k)] = struct{}{}
		for i := 0; i < n; i++ {
			if mask[i/64]&(1<<uint(i%64)) != 0 {
				continue
			}
			it := &items[i]
			if it.read || it.inv > minRet {
				continue
			}
			next := copyMask(mask)
			next[i/64] |= 1 << uint(i%64)
			ok := dfs(next, ids[i])
			free = append(free, next)
			if ok {
				return true
			}
		}
		return false
	}
	return dfs(make([]uint64, words), 0)
}
