package history

import "testing"

// lockHist builds a sequential lock-service history out of
// (kind, client, outcome) triples on lock "L".
func lockHist(specs ...[3]string) History {
	h := make(History, len(specs))
	for i, s := range specs {
		outcome := Ok
		switch s[2] {
		case "failed":
			outcome = Failed
		case "ambiguous":
			outcome = Ambiguous
		}
		key := "L"
		if s[0] == "incr" {
			key = "seq"
		}
		h[i] = Op{Index: i, Kind: s[0], Client: s[1], Key: key, Outcome: outcome,
			Invoke: ms(2 * i), Return: ms(2*i + 1)}
	}
	return h
}

// TestMutexCleanHandoff: the golden known-good history — strict
// alternation through explicit unlocks.
func TestMutexCleanHandoff(t *testing.T) {
	h := lockHist(
		[3]string{"lock", "c1", "ok"},
		[3]string{"lock", "c2", "failed"},
		[3]string{"unlock", "c1", "ok"},
		[3]string{"lock", "c2", "ok"},
		[3]string{"unlock", "c2", "ok"},
	)
	wantNone(t, MutualExclusion(MutexSpec{})(h))
}

// TestMutexDoubleGrant: the golden known-violating history — both
// clients hold the lock at once (split views granting independently).
func TestMutexDoubleGrant(t *testing.T) {
	h := lockHist(
		[3]string{"lock", "c1", "ok"},
		[3]string{"lock", "c2", "ok"},
	)
	v := wantOne(t, MutualExclusion(MutexSpec{})(h), "mutual-exclusion", "L")
	if len(v.Witness) != 2 {
		t.Fatalf("double grant witness should name both grants, got %v", v.Witness)
	}
}

// TestMutexAmbiguousUnlockReleases: an unlock the coordinator may
// have applied releases the hold — a subsequent grant is a handoff,
// not a double grant.
func TestMutexAmbiguousUnlockReleases(t *testing.T) {
	h := lockHist(
		[3]string{"lock", "c1", "ok"},
		[3]string{"unlock", "c1", "ambiguous"},
		[3]string{"lock", "c2", "ok"},
	)
	wantNone(t, MutualExclusion(MutexSpec{})(h))
}

// TestMutexLeaseDoubt: any ambiguous operation by the holder abandons
// its holds (the Chubby rule): a later grant to the other client is a
// legitimate lease handoff.
func TestMutexLeaseDoubt(t *testing.T) {
	h := lockHist(
		[3]string{"lock", "c1", "ok"},
		[3]string{"incr", "c1", "ambiguous"},
		[3]string{"lock", "c2", "ok"},
	)
	wantNone(t, MutualExclusion(MutexSpec{})(h))
}

// TestMutexFailedUnlockStillHeld: a definitively refused unlock does
// not release — a grant to the other client is still a double grant.
func TestMutexFailedUnlockStillHeld(t *testing.T) {
	h := lockHist(
		[3]string{"lock", "c1", "ok"},
		[3]string{"unlock", "c1", "failed"},
		[3]string{"lock", "c2", "ok"},
	)
	wantOne(t, MutualExclusion(MutexSpec{})(h), "mutual-exclusion", "L")
}

// TestUniqueOutputs: the duplicate-sequence history — the same value
// issued to both clients.
func TestUniqueOutputs(t *testing.T) {
	h := History{
		{Index: 0, Kind: "incr", Client: "c1", Key: "seq", Output: "7", Outcome: Ok, Invoke: ms(0), Return: ms(1)},
		{Index: 1, Kind: "incr", Client: "c2", Key: "seq", Output: "8", Outcome: Ok, Invoke: ms(2), Return: ms(3)},
		{Index: 2, Kind: "incr", Client: "c2", Key: "seq", Output: "7", Outcome: Ok, Invoke: ms(4), Return: ms(5)},
	}
	v := wantOne(t, UniqueOutputs("incr", "unique-sequence")(h), "unique-sequence", "seq")
	if len(v.Witness) != 2 {
		t.Fatalf("duplicate witness should name both draws, got %v", v.Witness)
	}
	wantNone(t, UniqueOutputs("incr", "unique-sequence")(h[:2]))
}
