package history

import (
	"testing"
	"time"
)

// lockHist builds a sequential lock-service history out of
// (kind, client, outcome) triples on lock "L".
func lockHist(specs ...[3]string) History {
	h := make(History, len(specs))
	for i, s := range specs {
		outcome := Ok
		switch s[2] {
		case "failed":
			outcome = Failed
		case "ambiguous":
			outcome = Ambiguous
		}
		key := "L"
		if s[0] == "incr" {
			key = "seq"
		}
		h[i] = Op{Index: i, Kind: s[0], Client: s[1], Key: key, Outcome: outcome,
			Invoke: ms(2 * i), Return: ms(2*i + 1)}
	}
	return h
}

// TestMutexCleanHandoff: the golden known-good history — strict
// alternation through explicit unlocks.
func TestMutexCleanHandoff(t *testing.T) {
	h := lockHist(
		[3]string{"lock", "c1", "ok"},
		[3]string{"lock", "c2", "failed"},
		[3]string{"unlock", "c1", "ok"},
		[3]string{"lock", "c2", "ok"},
		[3]string{"unlock", "c2", "ok"},
	)
	wantNone(t, MutualExclusion(MutexSpec{})(h))
}

// TestMutexDoubleGrant: the golden known-violating history — both
// clients hold the lock at once (split views granting independently).
func TestMutexDoubleGrant(t *testing.T) {
	h := lockHist(
		[3]string{"lock", "c1", "ok"},
		[3]string{"lock", "c2", "ok"},
	)
	v := wantOne(t, MutualExclusion(MutexSpec{})(h), "mutual-exclusion", "L")
	if len(v.Witness) != 2 {
		t.Fatalf("double grant witness should name both grants, got %v", v.Witness)
	}
}

// TestMutexAmbiguousUnlockReleases: an unlock the coordinator may
// have applied releases the hold — a subsequent grant is a handoff,
// not a double grant.
func TestMutexAmbiguousUnlockReleases(t *testing.T) {
	h := lockHist(
		[3]string{"lock", "c1", "ok"},
		[3]string{"unlock", "c1", "ambiguous"},
		[3]string{"lock", "c2", "ok"},
	)
	wantNone(t, MutualExclusion(MutexSpec{})(h))
}

// TestMutexLeaseDoubt: any ambiguous operation by the holder abandons
// its holds (the Chubby rule): a later grant to the other client is a
// legitimate lease handoff.
func TestMutexLeaseDoubt(t *testing.T) {
	h := lockHist(
		[3]string{"lock", "c1", "ok"},
		[3]string{"incr", "c1", "ambiguous"},
		[3]string{"lock", "c2", "ok"},
	)
	wantNone(t, MutualExclusion(MutexSpec{})(h))
}

// TestMutexFailedUnlockStillHeld: a definitively refused unlock does
// not release — a grant to the other client is still a double grant.
func TestMutexFailedUnlockStillHeld(t *testing.T) {
	h := lockHist(
		[3]string{"lock", "c1", "ok"},
		[3]string{"unlock", "c1", "failed"},
		[3]string{"lock", "c2", "ok"},
	)
	wantOne(t, MutualExclusion(MutexSpec{})(h), "mutual-exclusion", "L")
}

// TestUniqueOutputs: the duplicate-sequence history — the same value
// issued to both clients.
func TestUniqueOutputs(t *testing.T) {
	h := History{
		{Index: 0, Kind: "incr", Client: "c1", Key: "seq", Output: "7", Outcome: Ok, Invoke: ms(0), Return: ms(1)},
		{Index: 1, Kind: "incr", Client: "c2", Key: "seq", Output: "8", Outcome: Ok, Invoke: ms(2), Return: ms(3)},
		{Index: 2, Kind: "incr", Client: "c2", Key: "seq", Output: "7", Outcome: Ok, Invoke: ms(4), Return: ms(5)},
	}
	v := wantOne(t, UniqueOutputs("incr", "unique-sequence")(h), "unique-sequence", "seq")
	if len(v.Witness) != 2 {
		t.Fatalf("duplicate witness should name both draws, got %v", v.Witness)
	}
	wantNone(t, UniqueOutputs("incr", "unique-sequence")(h[:2]))
}

// timedOp builds one lock-service op with an explicit invocation time,
// for the lease-semantics tests where the gaps are the point.
func timedOp(idx int, kind, client, key string, outcome Outcome, at int) Op {
	return Op{Index: idx, Kind: kind, Client: client, Key: key, Outcome: outcome,
		Invoke: ms(at), Return: ms(at + 1)}
}

// TestMutexLeaseExpiredHolderReclaimed: under LeaseTTL, a holder
// silent past the TTL has expired — the service granting the lock
// onward is correct, not a double grant. The strict spec (no TTL)
// still flags the same history.
func TestMutexLeaseExpiredHolderReclaimed(t *testing.T) {
	h := History{
		timedOp(0, "lock", "c1", "L", Ok, 0),
		timedOp(1, "lock", "c2", "L", Ok, 100),
	}
	ttl := 60 * time.Millisecond
	wantNone(t, MutualExclusion(MutexSpec{LeaseTTL: ttl})(h))
	wantOne(t, MutualExclusion(MutexSpec{})(h), "mutual-exclusion", "L")
}

// TestMutexLeaseFreshHolderStillFlagged: any recorded activity
// refreshes the holder's liveness — a grant against a holder active
// within the TTL is a real double grant, lease semantics or not.
func TestMutexLeaseFreshHolderStillFlagged(t *testing.T) {
	h := History{
		timedOp(0, "lock", "c1", "L", Ok, 0),
		timedOp(1, "incr", "c1", "seq", Ok, 80),
		timedOp(2, "lock", "c2", "L", Ok, 100),
	}
	wantOne(t, MutualExclusion(MutexSpec{LeaseTTL: 60 * time.Millisecond})(h), "mutual-exclusion", "L")
}

// TestMutexLeaseStaleBlindReleaseCorruptsNewGrant: the resumed
// zombie's signature breach. c1's lease is reclaimed and regranted to
// c2 while c1 is frozen (silent past the TTL — no violation); c1 then
// wakes, blindly releases the lock it no longer holds, and relocks —
// while c2, recently active, still holds it. That grant is flagged.
func TestMutexLeaseStaleBlindReleaseCorruptsNewGrant(t *testing.T) {
	h := History{
		timedOp(0, "lock", "c1", "L", Ok, 0),
		timedOp(1, "lock", "c2", "L", Ok, 100),
		timedOp(2, "unlock", "c1", "L", Ok, 110),
		timedOp(3, "lock", "c1", "L", Ok, 120),
	}
	v := wantOne(t, MutualExclusion(MutexSpec{LeaseTTL: 60 * time.Millisecond})(h), "mutual-exclusion", "L")
	if len(v.Witness) != 2 {
		t.Fatalf("witness should pair c2's grant with c1's regrant, got %v", v.Witness)
	}
}
