package history

import (
	"strings"
	"testing"
	"time"
)

// rop builds one probe-phase op for the golden recovery cases.
func rop(idx int, kind, key, node string, outcome Outcome, note string, at time.Duration) Op {
	return Op{Index: idx, Client: "c1", Kind: kind, Key: key, Node: node,
		Outcome: outcome, Note: note, Phase: PhaseProbe, Invoke: at, Return: at + time.Millisecond}
}

// TestRecoveryFastRecovery: probes succeed — a clean round, no
// violations.
func TestRecoveryFastRecovery(t *testing.T) {
	h := History{
		{Index: 0, Kind: "put", Key: "k1", Input: "v1", Outcome: Ok},
		rop(1, "probe-put", "pk", "", Ok, "", 10*time.Millisecond),
		rop(2, "probe-get", "k1", "", Ok, "", 11*time.Millisecond),
	}
	check := Recovery(RecoverySpec{WriteKind: "put", ReadKind: "probe-get"})
	if vs := check(h); len(vs) != 0 {
		t.Fatalf("clean recovery flagged: %v", sigs(vs))
	}
}

// TestRecoveryNoProbesNoJudgement: a history without a probe phase
// (probing disabled, or nothing to probe) yields no violations.
func TestRecoveryNoProbesNoJudgement(t *testing.T) {
	h := History{{Index: 0, Kind: "put", Key: "k1", Outcome: Ok}}
	if vs := Recovery(RecoverySpec{})(h); len(vs) != 0 {
		t.Fatalf("probe-free history flagged: %v", sigs(vs))
	}
}

// TestRecoveryStuck: not a single probe succeeded — one
// stuck-after-heal violation for the round, with a witness, and no
// per-group noise on top.
func TestRecoveryStuck(t *testing.T) {
	h := History{
		{Index: 0, Kind: "send", Key: "q", Input: "m1", Outcome: Ok},
	}
	for i := 0; i < 8; i++ {
		h = append(h, rop(1+i, "probe-send", "pq", "", Failed, "", time.Duration(10+i)*time.Millisecond))
	}
	vs := Recovery(RecoverySpec{})(h)
	if len(vs) != 1 || vs[0].Invariant != "stuck-after-heal" {
		t.Fatalf("got %v, want exactly one stuck-after-heal", sigs(vs))
	}
	if len(vs[0].Witness) == 0 || len(vs[0].Witness) > 6 {
		t.Fatalf("witness has %d ops, want 1..6", len(vs[0].Witness))
	}
	// The witness must bracket the window: first and last probe.
	if vs[0].Witness[0].Index != 1 || vs[0].Witness[len(vs[0].Witness)-1].Index != 8 {
		t.Fatalf("witness %v does not bracket the probe window", vs[0].Witness)
	}
}

// TestRecoveryDegradedOneNode: probes of one node never get any
// definitive response while the others answer — degraded-after-heal
// for exactly that group. Definitive refusals count as the service
// answering.
func TestRecoveryDegradedOneNode(t *testing.T) {
	h := History{
		rop(0, "probe-get", "k", "n1", Ok, "", 10*time.Millisecond),
		rop(1, "probe-get", "k", "n2", Ambiguous, "", 10*time.Millisecond),
		rop(2, "probe-get", "k", "n3", Failed, "", 10*time.Millisecond),
		rop(3, "probe-get", "k", "n1", Ok, "", 20*time.Millisecond),
		rop(4, "probe-get", "k", "n2", Ambiguous, "", 20*time.Millisecond),
		rop(5, "probe-get", "k", "n3", Ok, "", 20*time.Millisecond),
	}
	vs := Recovery(RecoverySpec{})(h)
	if len(vs) != 1 || vs[0].Invariant != "degraded-after-heal" || vs[0].Subject != "k@n2" {
		t.Fatalf("got %v, want degraded-after-heal(k@n2)", sigs(vs))
	}
	for _, op := range vs[0].Witness {
		if op.Node != "n2" {
			t.Fatalf("witness leaked another group's op: %v", op)
		}
	}
}

// TestRecoveryDataLoss: an acknowledged pre-heal write whose key every
// probe read proves absent — data-loss-after-heal with the acked write
// in the witness; the key is not additionally reported as degraded.
func TestRecoveryDataLoss(t *testing.T) {
	h := History{
		{Index: 0, Kind: "put", Key: "k1", Input: "v9", Outcome: Ok},
		rop(1, "probe-put", "pk", "", Ok, "", 10*time.Millisecond),
		rop(2, "probe-get", "k1", "", Ok, "missing", 11*time.Millisecond),
		rop(3, "probe-get", "k1", "", Ok, "missing", 20*time.Millisecond),
	}
	vs := Recovery(RecoverySpec{WriteKind: "put", ReadKind: "probe-get"})(h)
	if len(vs) != 1 || vs[0].Invariant != "data-loss-after-heal" || vs[0].Subject != "k1" {
		t.Fatalf("got %v, want data-loss-after-heal(k1)", sigs(vs))
	}
	if vs[0].Witness[0].Index != 0 {
		t.Fatalf("witness %v must lead with the acknowledged write", vs[0].Witness)
	}
	if !strings.Contains(vs[0].Detail, `"v9"`) {
		t.Fatalf("detail %q does not name the lost write", vs[0].Detail)
	}
}

// TestRecoveryDataLossMetaNote: the dfs shape — metadata asserts the
// file exists, every read of its bytes definitively fails. With the
// MetaNote configured that is data loss, not degradation.
func TestRecoveryDataLossMetaNote(t *testing.T) {
	h := History{
		{Index: 0, Kind: "write", Key: "f0", Input: "f0-op3", Outcome: Ok},
		rop(1, "probe-write", "pf", "", Ok, "", 10*time.Millisecond),
		rop(2, "probe-read", "f0", "", Failed, "meta-exists", 11*time.Millisecond),
		rop(3, "probe-read", "f0", "", Failed, "meta-exists", 20*time.Millisecond),
	}
	spec := RecoverySpec{WriteKind: "write", ReadKind: "probe-read", MetaNote: "meta-exists"}
	vs := Recovery(spec)(h)
	if len(vs) != 1 || vs[0].Invariant != "data-loss-after-heal" || vs[0].Subject != "f0" {
		t.Fatalf("got %v, want data-loss-after-heal(f0)", sigs(vs))
	}
	// Without the MetaNote the same history is merely a definitive
	// failure: the service answered, the spec claims no metadata
	// authority — no violation at all.
	spec.MetaNote = ""
	if vs := Recovery(spec)(h); len(vs) != 0 {
		t.Fatalf("MetaNote-free spec flagged: %v", sigs(vs))
	}
}

// TestRecoveryValueReadForgivesAbsence: one probe read returning the
// value clears the key — a transiently stale "missing" before
// convergence is not data loss.
func TestRecoveryValueReadForgivesAbsence(t *testing.T) {
	h := History{
		{Index: 0, Kind: "put", Key: "k1", Input: "v1", Outcome: Ok},
		rop(1, "probe-get", "k1", "", Ok, "missing", 10*time.Millisecond),
		rop(2, "probe-get", "k1", "", Ok, "", 30*time.Millisecond),
	}
	if vs := Recovery(RecoverySpec{WriteKind: "put", ReadKind: "probe-get"})(h); len(vs) != 0 {
		t.Fatalf("recovered key flagged: %v", sigs(vs))
	}
}

// TestRecoveryUnackedWriteNotProtected: an Ambiguous write carries no
// durability promise — its absence after the heal is not data loss.
func TestRecoveryUnackedWriteNotProtected(t *testing.T) {
	h := History{
		{Index: 0, Kind: "put", Key: "k1", Input: "v1", Outcome: Ambiguous},
		rop(1, "probe-put", "pk", "", Ok, "", 10*time.Millisecond),
		rop(2, "probe-get", "k1", "", Ok, "missing", 11*time.Millisecond),
	}
	if vs := Recovery(RecoverySpec{WriteKind: "put", ReadKind: "probe-get"})(h); len(vs) != 0 {
		t.Fatalf("unacked write's absence flagged: %v", sigs(vs))
	}
}
