package history

import (
	"sync"
	"time"

	"neat/internal/clock"
)

// Recorder collects one round's operations. It is concurrency-safe:
// indices are assigned under a lock in Begin order, and timestamps
// come from the round's clock, so a deterministic workload on a
// virtual clock records a byte-identical history at any worker count.
type Recorder struct {
	mu     sync.Mutex
	clk    clock.Clock
	base   time.Time
	ops    []Op
	faults int
	phase  string
}

// NewRecorder starts a recorder; offsets are measured from now on clk.
func NewRecorder(clk clock.Clock) *Recorder {
	return &Recorder{clk: clk, base: clk.Now()}
}

// now is called with r.mu held.
func (r *Recorder) now() time.Duration { return r.clk.Now().Sub(r.base) }

// SetFaults updates the active-fault count stamped onto subsequently
// begun operations. The campaign runner calls it as faults inject and
// heal.
func (r *Recorder) SetFaults(n int) {
	r.mu.Lock()
	r.faults = n
	r.mu.Unlock()
}

// SetPhase changes the phase tag stamped onto subsequently begun
// operations. The campaign runner sets PhaseProbe for the post-heal
// recovery-validation window and restores PhaseMain afterwards.
func (r *Recorder) SetPhase(phase string) {
	r.mu.Lock()
	r.phase = phase
	r.mu.Unlock()
}

// OpRef is a handle to an in-flight operation.
type OpRef struct {
	r   *Recorder
	idx int
}

// Begin records the invocation of op: the caller fills Client, Kind,
// Key and optionally Node/Input/Aux; the recorder stamps Index,
// Faults, and the invocation time. Until End is called the operation
// stands as Ambiguous with no recorded response — exactly what an
// in-flight request is.
func (r *Recorder) Begin(op Op) OpRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	op.Index = len(r.ops)
	op.Faults = r.faults
	if op.Phase == "" {
		op.Phase = r.phase
	}
	op.Invoke = r.now()
	op.Return = NoReturn
	op.Outcome = Ambiguous
	r.ops = append(r.ops, op)
	return OpRef{r: r, idx: op.Index}
}

// End records the response: outcome, returned output, and the return
// time.
func (ref OpRef) End(outcome Outcome, output string) {
	ref.EndNote(outcome, output, "")
}

// EndNote is End with a deterministic marker note attached.
func (ref OpRef) EndNote(outcome Outcome, output, note string) {
	r := ref.r
	r.mu.Lock()
	defer r.mu.Unlock()
	op := &r.ops[ref.idx]
	op.Outcome = outcome
	op.Output = output
	if note != "" {
		op.Note = note
	}
	op.Return = r.now()
}

// SetAux attaches an auxiliary payload (e.g. the vector clock an
// acknowledgement carried) to the operation.
func (ref OpRef) SetAux(aux string) {
	r := ref.r
	r.mu.Lock()
	r.ops[ref.idx].Aux = aux
	r.mu.Unlock()
}

// SetNode records the replica the operation ended up addressing, for
// operations whose target is only known from the response (a placement
// answer naming the chosen node).
func (ref OpRef) SetNode(node string) {
	r := ref.r
	r.mu.Lock()
	r.ops[ref.idx].Node = node
	r.mu.Unlock()
}

// Len reports how many operations have begun.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// History returns a copy of the recorded operations in invocation
// order. Operations still in flight appear as Ambiguous with
// Return == NoReturn.
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(History, len(r.ops))
	copy(out, r.ops)
	return out
}
