package history

import (
	"fmt"
	"sort"
)

// RecoverySpec parameterizes the Recovery checker.
//
// The checker judges only the probe phase — the operations the runner
// drives after every fault has healed, inside the configured RTO
// window (the runner bounds the probe phase to the RTO on the round's
// clock, so "never within the probe phase" is exactly "not within the
// RTO"). Three violation classes come out of it, matching the paper's
// finding that most partition-induced failures persist after the
// partition heals:
//
//   - stuck-after-heal: the system as a whole never came back — not a
//     single probe operation succeeded within the RTO.
//   - degraded-after-heal: the system partially came back — some
//     probed node or key never produced any definitive response (every
//     attempt timed out or hung), while the rest of the probes got
//     answers. A definitive refusal counts as the service answering:
//     degradation here is about liveness, not correctness.
//   - data-loss-after-heal: the system came back but an acknowledged
//     main-phase write is authoritatively gone — every probe read of
//     its key either reports the configured "missing" note (the
//     namespace's own "no such object") or fails with the MetaNote
//     marker (metadata asserts existence, the bytes are unreadable),
//     and no probe read ever returned the value.
type RecoverySpec struct {
	// WriteKind is the main-phase write verb whose acknowledged
	// operations the data-loss rule protects ("put", "write", "submit").
	// Empty disables the data-loss rule.
	WriteKind string
	// ReadKind is the probe-phase read verb the data-loss rule consults
	// ("probe-get", "probe-read", "probe-status").
	ReadKind string
	// MissingNote is the note a probe read records for an authoritative
	// absence (default "missing").
	MissingNote string
	// MetaNote, when set, is the note of a definitive read failure that
	// itself asserts metadata existence (the dfs "meta-exists" marker);
	// such a read is data-loss evidence too: the namespace says the
	// object exists and its bytes are gone.
	MetaNote string
}

// Recovery returns the post-heal recovery checker for spec.
func Recovery(spec RecoverySpec) Check {
	if spec.MissingNote == "" {
		spec.MissingNote = "missing"
	}
	return func(h History) []Violation {
		probes := h.Filter(func(op Op) bool { return op.Phase == PhaseProbe })
		if len(probes) == 0 {
			return nil
		}
		// Stuck: nothing ever succeeded. One violation for the whole
		// round; per-group reports would be noise on top of it.
		anyOk := false
		for _, op := range probes {
			if op.Outcome == Ok {
				anyOk = true
				break
			}
		}
		if !anyOk {
			return []Violation{{
				Invariant: "stuck-after-heal",
				Subject:   "probe",
				Detail: fmt.Sprintf("no probe operation succeeded within the RTO window after every fault healed (%d probes, first %v, last %v)",
					len(probes), probes[0].Invoke, probes[len(probes)-1].Invoke),
				Witness: probeWitness(probes),
			}}
		}

		var out []Violation
		lost := map[string]bool{}
		// Data loss: an acked main-phase write whose key the probes can
		// only prove absent.
		if spec.WriteKind != "" && spec.ReadKind != "" {
			out = append(out, recoveryDataLoss(h, probes, spec, lost)...)
		}
		// Degraded: a probed group that never produced any definitive
		// response while the rest of the system answered. Keys already
		// reported as data loss are excluded — their probes did answer.
		groups := map[string][]Op{}
		var order []string
		for _, op := range probes {
			g := op.Key
			if op.Node != "" {
				g = op.Key + "@" + op.Node
			}
			if _, seen := groups[g]; !seen {
				order = append(order, g)
			}
			groups[g] = append(groups[g], op)
		}
		sort.Strings(order)
		for _, g := range order {
			ops := groups[g]
			if lost[ops[0].Key] {
				continue
			}
			answered := false
			for _, op := range ops {
				if op.Outcome == Ok || op.Outcome == Failed {
					answered = true
					break
				}
			}
			if !answered {
				out = append(out, Violation{
					Invariant: "degraded-after-heal",
					Subject:   g,
					Detail: fmt.Sprintf("probes of %s never got a definitive response within the RTO window (%d attempts, all ambiguous) while other probes succeeded",
						g, len(ops)),
					Witness: probeWitness(ops),
				})
			}
		}
		return out
	}
}

// recoveryDataLoss applies the data-loss rule and records the keys it
// flagged into lost.
func recoveryDataLoss(h History, probes History, spec RecoverySpec, lost map[string]bool) []Violation {
	var out []Violation
	for _, key := range h.Keys(spec.WriteKind) {
		var lastAcked *Op
		for i := range h {
			op := h[i]
			if op.Phase == PhaseMain && op.Kind == spec.WriteKind && op.Key == key && op.Outcome == Ok {
				lastAcked = &h[i]
			}
		}
		if lastAcked == nil {
			continue
		}
		var reads History
		sawValue, sawAbsent := false, false
		for _, op := range probes {
			if op.Kind != spec.ReadKind || op.Key != key {
				continue
			}
			reads = append(reads, op)
			switch {
			case op.Outcome == Ok && op.Note == spec.MissingNote:
				sawAbsent = true
			case spec.MetaNote != "" && op.Outcome == Failed && op.Note == spec.MetaNote:
				sawAbsent = true
			case op.Outcome == Ok:
				sawValue = true
			}
		}
		if sawAbsent && !sawValue {
			out = append(out, Violation{
				Invariant: "data-loss-after-heal",
				Subject:   key,
				Detail: fmt.Sprintf("write %q was acknowledged before the heal, but every post-heal probe read of %s proves the value gone (%d reads, none returned it)",
					lastAcked.Input, key, len(reads)),
				Witness: witness(append(History{*lastAcked}, probeWitness(reads)...)...),
			})
			lost[key] = true
		}
	}
	return out
}

// probeWitness caps a witness to the probes that tell the story: the
// first few attempts and the last one.
func probeWitness(ops History) []Op {
	const maxWitness = 6
	if len(ops) <= maxWitness {
		return witness(ops...)
	}
	keep := append(History{}, ops[:maxWitness-1]...)
	keep = append(keep, ops[len(ops)-1])
	return witness(keep...)
}
