package history

import (
	"strings"
	"testing"
)

// tasksHistory builds a history with sequential indices from op
// templates, as the recorder would.
func tasksHistory(ops ...Op) History {
	h := make(History, len(ops))
	for i, op := range ops {
		op.Index = i
		if op.Return == 0 {
			op.Return = op.Invoke
		}
		h[i] = op
	}
	return h
}

func tasksViolations(t *testing.T, spec TasksSpec, h History, want int) []Violation {
	t.Helper()
	vs := Tasks(spec)(h)
	if len(vs) != want {
		t.Fatalf("got %d violations, want %d: %v", len(vs), want, vs)
	}
	for _, v := range vs {
		if len(v.Witness) == 0 {
			t.Fatalf("violation %s(%s) has no witness trace", v.Invariant, v.Subject)
		}
	}
	return vs
}

// TestTasksExactlyOnceClean: one acknowledged job, one completion, one
// execution per node — nothing to report.
func TestTasksExactlyOnceClean(t *testing.T) {
	h := tasksHistory(
		Op{Client: "c1", Kind: "submit", Key: "j1", Outcome: Ok},
		Op{Client: "c1", Kind: "exec", Key: "j1", Note: "final", Output: "attempt1", Outcome: Ok},
		Op{Client: "c1", Kind: "exec", Key: "j1", Node: "s1", Note: "count", Output: "1", Outcome: Ok},
		Op{Client: "c1", Kind: "exec", Key: "j1", Node: "s2", Note: "count", Output: "1", Outcome: Ok},
	)
	tasksViolations(t, TasksSpec{}, h, 0)
}

// TestTasksDupExecution: the Figure 3 / MAPREDUCE-4819 shape — two
// completion notifications for one submission.
func TestTasksDupExecution(t *testing.T) {
	h := tasksHistory(
		Op{Client: "c1", Kind: "submit", Key: "j1", Outcome: Ok},
		Op{Client: "c1", Kind: "exec", Key: "j1", Note: "final", Output: "attempt1", Outcome: Ok},
		Op{Client: "c1", Kind: "exec", Key: "j1", Note: "final", Output: "attempt2", Outcome: Ok},
	)
	vs := tasksViolations(t, TasksSpec{}, h, 1)
	if vs[0].Invariant != "dup-execution" || vs[0].Subject != "j1" {
		t.Fatalf("got %s(%s)", vs[0].Invariant, vs[0].Subject)
	}
	if !strings.Contains(vs[0].Detail, "attempt1,attempt2") {
		t.Fatalf("detail does not name the attempts: %s", vs[0].Detail)
	}
}

// TestTasksMisleadingStatus: the DKron #379 shape — the client was
// told the job definitively failed, yet a node executed it.
func TestTasksMisleadingStatus(t *testing.T) {
	h := tasksHistory(
		Op{Client: "c1", Kind: "submit", Key: "backup", Outcome: Failed},
		Op{Client: "c1", Kind: "exec", Key: "backup", Node: "s1", Note: "count", Output: "1", Outcome: Ok},
		Op{Client: "c1", Kind: "exec", Key: "backup", Node: "s2", Note: "count", Output: "0", Outcome: Ok},
	)
	vs := tasksViolations(t, TasksSpec{}, h, 1)
	if vs[0].Invariant != "exactly-once" || vs[0].Subject != "backup" {
		t.Fatalf("got %s(%s)", vs[0].Invariant, vs[0].Subject)
	}
}

// TestTasksRetryDoublesWork: a failed-then-retried job that executed
// twice on a node exceeds the single acknowledged submission.
func TestTasksRetryDoublesWork(t *testing.T) {
	h := tasksHistory(
		Op{Client: "c1", Kind: "submit", Key: "backup", Outcome: Failed},
		Op{Client: "c1", Kind: "submit", Key: "backup", Outcome: Ok},
		Op{Client: "c1", Kind: "exec", Key: "backup", Node: "s1", Note: "count", Output: "2", Outcome: Ok},
	)
	vs := tasksViolations(t, TasksSpec{}, h, 1)
	if vs[0].Invariant != "exactly-once" {
		t.Fatalf("got %s", vs[0].Invariant)
	}
}

// TestTasksAmbiguousSubmitForgiven: an ambiguous submission may have
// executed — a matching tally is not a violation.
func TestTasksAmbiguousSubmitForgiven(t *testing.T) {
	h := tasksHistory(
		Op{Client: "c1", Kind: "submit", Key: "j1", Outcome: Ambiguous},
		Op{Client: "c1", Kind: "exec", Key: "j1", Node: "s1", Note: "count", Output: "1", Outcome: Ok},
		Op{Client: "c1", Kind: "exec", Key: "j1", Note: "final", Output: "attempt1", Outcome: Ok},
	)
	tasksViolations(t, TasksSpec{}, h, 0)
}

// TestTasksLostAck: an acknowledged submission with evidence reads on
// every node, all empty — the acked job never ran.
func TestTasksLostAck(t *testing.T) {
	h := tasksHistory(
		Op{Client: "c1", Kind: "submit", Key: "j1", Outcome: Ok},
		Op{Client: "c1", Kind: "exec", Key: "j1", Node: "s1", Note: "count", Output: "0", Outcome: Ok},
		Op{Client: "c1", Kind: "exec", Key: "j1", Node: "s2", Note: "count", Output: "0", Outcome: Ok},
	)
	vs := tasksViolations(t, TasksSpec{}, h, 1)
	if vs[0].Invariant != "lost-ack" || vs[0].Subject != "j1" {
		t.Fatalf("got %s(%s)", vs[0].Invariant, vs[0].Subject)
	}
}

// TestTasksLostAckNeedsEvidence: without any recorded execution
// evidence the checker must stay silent — unobserved is not lost.
func TestTasksLostAckNeedsEvidence(t *testing.T) {
	h := tasksHistory(
		Op{Client: "c1", Kind: "submit", Key: "j1", Outcome: Ok},
	)
	tasksViolations(t, TasksSpec{}, h, 0)
}

// TestTasksUnreachableScheduling: the HDFS-577/HDFS-1384 shape — the
// placement answer re-offers a node from the request's own exclusion
// list.
func TestTasksUnreachableScheduling(t *testing.T) {
	spec := TasksSpec{SubmitKind: "write", ScheduleKind: "alloc"}
	h := tasksHistory(
		Op{Client: "c1", Kind: "alloc", Key: "f1", Node: "d1", Outcome: Ok},
		Op{Client: "c1", Kind: "store", Key: "f1", Node: "d1", Outcome: Failed},
		Op{Client: "c1", Kind: "alloc", Key: "f1", Node: "d2", Input: "d1", Outcome: Ok},
		Op{Client: "c1", Kind: "store", Key: "f1", Node: "d2", Outcome: Failed},
		Op{Client: "c1", Kind: "alloc", Key: "f1", Node: "d1", Input: "d1,d2", Outcome: Ok},
	)
	vs := tasksViolations(t, spec, h, 1)
	if vs[0].Invariant != "unreachable-scheduling" || vs[0].Subject != "d1" {
		t.Fatalf("got %s(%s)", vs[0].Invariant, vs[0].Subject)
	}
	// The witness carries the re-offer and failed-attempt context.
	sawAlloc, sawStore := false, false
	for _, op := range vs[0].Witness {
		if op.Kind == "alloc" && op.Index == 4 {
			sawAlloc = true
		}
		if op.Kind == "store" && op.Node == "d1" {
			sawStore = true
		}
	}
	if !sawAlloc || !sawStore {
		t.Fatalf("witness lacks the re-offer or the failed attempt: %v", vs[0].Witness)
	}
}

// TestTasksUnreachableSchedulingCleanPlacement: exclusion-respecting
// placement never fires the rule, whatever failed around it.
func TestTasksUnreachableSchedulingCleanPlacement(t *testing.T) {
	spec := TasksSpec{SubmitKind: "write", ScheduleKind: "alloc"}
	h := tasksHistory(
		Op{Client: "c1", Kind: "alloc", Key: "f1", Node: "d1", Outcome: Ok},
		Op{Client: "c1", Kind: "store", Key: "f1", Node: "d1", Outcome: Failed},
		Op{Client: "c1", Kind: "alloc", Key: "f1", Node: "d3", Input: "d1", Outcome: Ok},
		Op{Client: "c1", Kind: "store", Key: "f1", Node: "d3", Outcome: Ok},
	)
	tasksViolations(t, spec, h, 0)
}

// TestTasksNamespaceInconsistency: the MooseFS #131/#132 shape — the
// namespace says the file exists, no replica serves it.
func TestTasksNamespaceInconsistency(t *testing.T) {
	spec := TasksSpec{SubmitKind: "write", MetaNote: "meta-exists"}
	h := tasksHistory(
		Op{Client: "c1", Kind: "write", Key: "f1", Input: "data", Outcome: Ok},
		Op{Client: "c1", Kind: "read", Key: "f1", Note: "meta-exists", Outcome: Failed},
		Op{Client: "c1", Kind: "read", Key: "f1", Note: "meta-exists", Outcome: Failed}, // dedup: one per file
	)
	vs := tasksViolations(t, spec, h, 1)
	if vs[0].Invariant != "namespace-inconsistency" || vs[0].Subject != "f1" {
		t.Fatalf("got %s(%s)", vs[0].Invariant, vs[0].Subject)
	}
	if len(vs[0].Witness) != 2 {
		t.Fatalf("witness should pair the committed write with the failed read: %v", vs[0].Witness)
	}
}

// TestTasksDeterministic: equal histories yield equal violations in
// equal order — the property campaign dedup and shrinking rely on.
func TestTasksDeterministic(t *testing.T) {
	spec := TasksSpec{SubmitKind: "write", ScheduleKind: "alloc", MetaNote: "meta-exists"}
	h := tasksHistory(
		Op{Client: "c1", Kind: "write", Key: "f1", Outcome: Ok},
		Op{Client: "c1", Kind: "alloc", Key: "f1", Node: "d2", Input: "d2,d1", Outcome: Ok},
		Op{Client: "c1", Kind: "alloc", Key: "f2", Node: "d1", Input: "d1", Outcome: Ok},
		Op{Client: "c1", Kind: "read", Key: "f1", Note: "meta-exists", Outcome: Failed},
	)
	first := Tasks(spec)(h)
	if len(first) != 3 {
		t.Fatalf("got %d violations, want 3 (two nodes, one namespace): %v", len(first), first)
	}
	// Node subjects sort deterministically.
	if first[0].Subject != "d1" || first[1].Subject != "d2" {
		t.Fatalf("unreachable-scheduling subjects out of order: %v", first)
	}
	for i := 0; i < 5; i++ {
		again := Tasks(spec)(h)
		for j := range again {
			if again[j].Detail != first[j].Detail || again[j].Subject != first[j].Subject {
				t.Fatalf("run %d diverged at %d: %v vs %v", i, j, again[j], first[j])
			}
		}
	}
}
