// Package history is the shared operation-history layer of the
// campaign engine: every client operation a target drives is recorded
// as a timed invocation/response pair with an explicit outcome, and
// invariants are judged afterwards by generic checkers — pure
// functions over the recorded history — instead of per-target ad-hoc
// bookkeeping.
//
// The paper's central observation motivates the split: most
// partition-induced failures are silent data-integrity violations
// (lost updates, dirty reads, double grants) that are only catchable
// when the harness knows exactly what every client observed, when it
// observed it, and whether a failed operation might nevertheless have
// been applied. Recording that once, in one format, lets every target
// share the same checkers and lets every violation carry a witness
// trace — the minimal set of operations that proves the breach.
//
// The pieces:
//
//   - Op: one client operation — invocation/response offsets on the
//     round's (virtual) clock, an Ok | Failed | Ambiguous outcome, and
//     the operation's subject key and payloads.
//   - Recorder: the per-round, concurrency-safe collector targets
//     record into. Indices are assigned in invocation order, so a
//     deterministic workload yields a byte-identical history.
//   - Check: a pure function History -> []Violation. The generic
//     checkers (Registers, SilentWrites, MutualExclusion,
//     UniqueOutputs, Queue, Convergence) live in this package;
//     targets select and parameterize the ones that match their
//     semantics.
package history

import (
	"fmt"
	"sort"
	"time"
)

// Outcome classifies what the client learned from one operation.
type Outcome uint8

const (
	// Ok: the operation was acknowledged; its effect definitely took
	// place within the invocation window.
	Ok Outcome = iota
	// Failed: the operation was definitively refused before being
	// applied; its effect must never be observed.
	Failed
	// Ambiguous: the operation failed in a way that may still have
	// been applied — a transport timeout with the request possibly
	// executed and only the reply lost, or a coordinator that applied
	// locally before replication failed. The paper's "silent success"
	// window lives entirely inside this outcome.
	Ambiguous
)

// String renders the outcome for reports.
func (o Outcome) String() string {
	switch o {
	case Ok:
		return "ok"
	case Failed:
		return "failed"
	case Ambiguous:
		return "ambiguous"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// OutcomeOf classifies a client call result: nil is Ok; an error the
// client knows may still have been applied (its package's
// MaybeExecuted predicate) is Ambiguous; everything else is a
// definitive refusal.
func OutcomeOf(err error, maybeExecuted bool) Outcome {
	switch {
	case err == nil:
		return Ok
	case maybeExecuted:
		return Ambiguous
	default:
		return Failed
	}
}

// NoReturn is the Return offset of an operation whose response was
// never recorded; checkers treat its effect window as open-ended.
const NoReturn = time.Duration(-1)

// Phase tags for Op.Phase.
const (
	// PhaseMain is the default phase: the fault-window workload and
	// the post-heal observation reads.
	PhaseMain = ""
	// PhaseProbe marks operations of the recovery-validation probe the
	// runner drives after the heal, inside the RTO window.
	PhaseProbe = "probe"
)

// Op is one recorded client operation.
type Op struct {
	// Index is the zero-based invocation order within the round; it is
	// the operation's identity in witness traces.
	Index int
	// Client is the stable label of the issuing client ("c1").
	Client string
	// Kind is the operation verb ("put", "get", "lock", "send", ...).
	Kind string
	// Key is the subject object (a key, lock, queue, or object name).
	Key string
	// Node, when set, is the specific replica the operation addressed
	// (per-replica observation reads).
	Node string
	// Input is the written value / argument, if any.
	Input string
	// Output is the returned value, for Ok operations that read.
	Output string
	// Outcome classifies the response.
	Outcome Outcome
	// Note is a small, deterministic marker checkers key off
	// ("missing", "empty", "applied").
	Note string
	// Aux is an auxiliary payload (e.g. the vector clock returned with
	// a Dynamo-style acknowledgement).
	Aux string
	// Faults is how many schedule faults were active at invocation.
	Faults int
	// Phase tags which execution phase recorded the operation: ""
	// (PhaseMain) for the fault-window workload and the observation
	// reads, PhaseProbe for the post-heal recovery-validation probes.
	// The Recovery checker judges only probe-phase operations; every
	// other checker sees phases alike.
	Phase string
	// Invoke and Return are offsets from the round's start on the
	// round's clock. Under virtual time they are deterministic.
	Invoke time.Duration
	// Return is NoReturn when no response was recorded.
	Return time.Duration
}

// String renders the op compactly for logs and witness listings.
func (op Op) String() string {
	s := fmt.Sprintf("#%d %s %s(%s)", op.Index, op.Client, op.Kind, op.Key)
	if op.Node != "" {
		s += "@" + op.Node
	}
	if op.Input != "" {
		s += fmt.Sprintf(" in=%q", op.Input)
	}
	if op.Output != "" {
		s += fmt.Sprintf(" out=%q", op.Output)
	}
	s += " -> " + op.Outcome.String()
	if op.Note != "" {
		s += "/" + op.Note
	}
	if op.Return == NoReturn {
		s += fmt.Sprintf(" @[%v,?]", op.Invoke)
	} else {
		s += fmt.Sprintf(" @[%v,%v]", op.Invoke, op.Return)
	}
	if op.Faults > 0 {
		s += fmt.Sprintf(" faults=%d", op.Faults)
	}
	if op.Phase != "" {
		s += " phase=" + op.Phase
	}
	return s
}

// History is a round's recorded operations, in invocation order.
type History []Op

// Keys returns the sorted distinct keys of operations matching one of
// the given kinds (all operations when no kind is given).
func (h History) Keys(kinds ...string) []string {
	want := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	seen := make(map[string]bool)
	var out []string
	for _, op := range h {
		if len(want) > 0 && !want[op.Kind] {
			continue
		}
		if !seen[op.Key] {
			seen[op.Key] = true
			out = append(out, op.Key)
		}
	}
	sort.Strings(out)
	return out
}

// ForKey returns the sub-history of one key, order preserved. The
// result is sized exactly — this sits on the per-key hot path of the
// linearizability checker, where append doubling would dominate the
// checker's allocations.
func (h History) ForKey(key string) History {
	n := 0
	for i := range h {
		if h[i].Key == key {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make(History, 0, n)
	for i := range h {
		if h[i].Key == key {
			out = append(out, h[i])
		}
	}
	return out
}

// Filter returns the operations matching pred, order preserved.
func (h History) Filter(pred func(Op) bool) History {
	var out History
	for _, op := range h {
		if pred(op) {
			out = append(out, op)
		}
	}
	return out
}

// Violation is one invariant breach a checker proved from the
// history. Subject must be stable across runs (a key, lock, or queue
// name) so identical failures deduplicate by signature upstream.
type Violation struct {
	// Invariant names the broken property ("durability",
	// "mutual-exclusion", "at-most-once", ...).
	Invariant string
	// Subject is the object the violation concerns.
	Subject string
	// Detail is the human-readable specifics.
	Detail string
	// Witness is the minimal set of operations that proves the
	// violation, in invocation order.
	Witness []Op
}

// Check is a generic checker: a pure function over a recorded
// history. Checkers must be deterministic — equal histories yield
// equal violations in equal order.
type Check func(History) []Violation

// witness assembles a deduplicated, index-sorted witness list.
func witness(ops ...Op) []Op {
	seen := make(map[int]bool, len(ops))
	out := make([]Op, 0, len(ops))
	for _, op := range ops {
		if !seen[op.Index] {
			seen[op.Index] = true
			out = append(out, op)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
