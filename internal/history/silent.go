package history

import "fmt"

// SilentSpec parameterizes the silent-success detector.
type SilentSpec struct {
	// WriteKind is the mutation verb to watch ("put").
	WriteKind string
	// ReadKind is the observation verb ("get").
	ReadKind string
	// AppliedNote, when non-empty, marks a failed operation the system
	// itself admitted applying (e.g. a storage primary that returns a
	// timeout after committing locally). Such operations are silent
	// successes by the system's own testimony, visible later or not.
	AppliedNote string
}

func (s *SilentSpec) defaults() {
	if s.WriteKind == "" {
		s.WriteKind = "put"
	}
	if s.ReadKind == "" {
		s.ReadKind = "get"
	}
}

// SilentWrites returns the silent-success check — the paper's
// failed-but-applied finding: a write the client was told had failed
// whose effect is nevertheless observed by a later read. Only
// Ambiguous writes can be silent successes (a definitively refused
// write that becomes visible is a dirty read, reported by Registers);
// the violation is the system resolving the ambiguity toward
// "applied" after answering "failed".
func SilentWrites(spec SilentSpec) Check {
	spec.defaults()
	return func(h History) []Violation {
		var out []Violation
		for _, w := range h {
			if w.Kind != spec.WriteKind || w.Outcome == Ok {
				continue
			}
			if spec.AppliedNote != "" && w.Note == spec.AppliedNote {
				out = append(out, Violation{
					Invariant: "silent-success",
					Subject:   w.Key,
					Detail: fmt.Sprintf("%s %q reported %s after the system applied it (its own admission)",
						w.Kind, w.Input, w.Outcome),
					Witness: witness(w),
				})
				continue
			}
			if w.Outcome != Ambiguous {
				continue
			}
			// Visibility matching needs a value that identifies this
			// write; absence (a delete's "input") matches too much.
			if w.Input == "" {
				continue
			}
			for _, r := range h {
				if r.Index <= w.Index || r.Kind != spec.ReadKind || r.Outcome != Ok || r.Key != w.Key {
					continue
				}
				if r.Output == w.Input {
					out = append(out, Violation{
						Invariant: "silent-success",
						Subject:   w.Key,
						Detail: fmt.Sprintf("write %q reported failure (timeout) yet was applied and later read back",
							w.Input),
						Witness: witness(w, r),
					})
					break
				}
			}
		}
		return out
	}
}
