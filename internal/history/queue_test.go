package history

import "testing"

// qOp builds one queue op on "q".
func qOp(i int, kind, client, msg string, outcome Outcome, note string) Op {
	op := Op{Index: i, Kind: kind, Client: client, Key: "q", Outcome: outcome, Note: note,
		Invoke: ms(2 * i), Return: ms(2*i + 1)}
	if kind == "send" {
		op.Input = msg
	} else {
		op.Output = msg
	}
	return op
}

// TestQueueExactlyOnce: the golden known-good history — every
// acknowledged send delivered exactly once, then an authoritative
// empty.
func TestQueueExactlyOnce(t *testing.T) {
	h := History{
		qOp(0, "send", "c1", "m1", Ok, ""),
		qOp(1, "send", "c1", "m2", Ok, ""),
		qOp(2, "recv", "c2", "m1", Ok, ""),
		qOp(3, "recv", "c1", "m2", Ok, ""),
		qOp(4, "recv", "c2", "", Ok, "empty"),
	}
	wantNone(t, Queue(QueueSpec{})(h))
}

// TestQueueDoubleDelivery: the double-dequeue history (Listing 2) —
// both sides of a partition served the same message.
func TestQueueDoubleDelivery(t *testing.T) {
	h := History{
		qOp(0, "send", "c1", "m1", Ok, ""),
		qOp(1, "recv", "c1", "m1", Ok, ""),
		qOp(2, "recv", "c2", "m1", Ok, ""),
		qOp(3, "recv", "c2", "", Ok, "empty"),
	}
	v := wantOne(t, Queue(QueueSpec{})(h), "at-most-once", "q")
	if len(v.Witness) != 2 {
		t.Fatalf("double delivery witness should name both receives, got %v", v.Witness)
	}
}

// TestQueueLostMessage: an acknowledged send never delivered although
// the broker authoritatively drained to empty.
func TestQueueLostMessage(t *testing.T) {
	h := History{
		qOp(0, "send", "c1", "m1", Ok, ""),
		qOp(1, "send", "c1", "m2", Ok, ""),
		qOp(2, "recv", "c2", "m2", Ok, ""),
		qOp(3, "recv", "c2", "", Ok, "empty"),
	}
	wantOne(t, Queue(QueueSpec{})(h), "durability", "q")
}

// TestQueueAmbiguousRecvForgives: a transport-timeout receive may
// have consumed the missing message invisibly — no durability claim.
func TestQueueAmbiguousRecvForgives(t *testing.T) {
	h := History{
		qOp(0, "send", "c1", "m1", Ok, ""),
		qOp(1, "send", "c1", "m2", Ok, ""),
		qOp(2, "recv", "c2", "", Ambiguous, ""),
		qOp(3, "recv", "c2", "m2", Ok, ""),
		qOp(4, "recv", "c2", "", Ok, "empty"),
	}
	wantNone(t, Queue(QueueSpec{})(h))
}

// TestQueueUndrainedNotJudged: without an authoritative empty answer
// after the last send, an unreachable backlog is not a lost one.
func TestQueueUndrainedNotJudged(t *testing.T) {
	h := History{
		// A step-phase empty (before the last send) must not count as a
		// drain.
		qOp(0, "recv", "c2", "", Ok, "empty"),
		qOp(1, "send", "c1", "m1", Ok, ""),
		qOp(2, "send", "c1", "m2", Ok, ""),
		qOp(3, "recv", "c2", "", Failed, ""),
	}
	wantNone(t, Queue(QueueSpec{})(h))
}

// TestQueuePhantomDelivery: a delivered message no acknowledged or
// ambiguous send produced.
func TestQueuePhantomDelivery(t *testing.T) {
	h := History{
		qOp(0, "send", "c1", "m1", Failed, ""),
		qOp(1, "recv", "c2", "m1", Ok, ""),
	}
	wantOne(t, Queue(QueueSpec{})(h), "phantom-delivery", "q")

	// The same delivery after an ambiguous send is legitimate.
	h[0].Outcome = Ambiguous
	wantNone(t, Queue(QueueSpec{})(h))
}

// TestQueueReordered: with order checking on, an inversion of send
// order is a violation; gaps alone are not.
func TestQueueReordered(t *testing.T) {
	gap := History{
		qOp(0, "send", "c1", "m1", Ok, ""),
		qOp(1, "send", "c1", "m2", Ok, ""),
		qOp(2, "send", "c1", "m3", Ok, ""),
		qOp(3, "recv", "c2", "", Ambiguous, ""), // may have eaten m1
		qOp(4, "recv", "c2", "m2", Ok, ""),
		qOp(5, "recv", "c2", "m3", Ok, ""),
		qOp(6, "recv", "c2", "", Ok, "empty"),
	}
	wantNone(t, Queue(QueueSpec{CheckOrder: true})(gap))

	inverted := History{
		qOp(0, "send", "c1", "m1", Ok, ""),
		qOp(1, "send", "c1", "m2", Ok, ""),
		qOp(2, "recv", "c2", "m2", Ok, ""),
		qOp(3, "recv", "c2", "m1", Ok, ""),
		qOp(4, "recv", "c2", "", Ok, "empty"),
	}
	v := wantOne(t, Queue(QueueSpec{CheckOrder: true})(inverted), "fifo-order", "q")
	if len(v.Witness) != 4 {
		t.Fatalf("inversion witness should name both sends and both receives, got %v", v.Witness)
	}
	// Order checking off: the same history is clean.
	wantNone(t, Queue(QueueSpec{})(inverted))
}
