package history

import (
	"fmt"
	"sort"
	"strings"
)

// QueueSpec parameterizes the exactly-once FIFO queue checker.
type QueueSpec struct {
	// SendKind enqueues Input ("send").
	SendKind string
	// RecvKind dequeues into Output ("recv"); an Ok receive with
	// EmptyNote is the broker's authoritative "queue empty" answer.
	RecvKind string
	// EmptyNote marks an authoritative empty receive ("empty").
	EmptyNote string
	// CheckOrder additionally verifies single-producer FIFO: messages
	// must be delivered in send order (gaps from ambiguous consumption
	// are legal, inversions are not).
	CheckOrder bool
}

func (s *QueueSpec) defaults() {
	if s.SendKind == "" {
		s.SendKind = "send"
	}
	if s.RecvKind == "" {
		s.RecvKind = "recv"
	}
	if s.EmptyNote == "" {
		s.EmptyNote = "empty"
	}
}

// Queue returns the exactly-once FIFO check over send/receive
// histories:
//
//   - at-most-once: no message may be delivered twice (Listing 2's
//     double dequeue).
//   - durability: every acknowledged send must be delivered — judged
//     only when the history ends with an authoritative "queue empty"
//     answer issued after the last send (the backlog was reachable and
//     fully drained), and forgiving one missing message per Ambiguous
//     receive, each of which may have consumed a message invisibly.
//   - phantom-delivery: a delivered message that no acknowledged or
//     ambiguous send produced.
//   - fifo-order (optional): deliveries must not invert send order.
func Queue(spec QueueSpec) Check {
	spec.defaults()
	return func(h History) []Violation {
		var out []Violation
		for _, key := range h.Keys(spec.SendKind, spec.RecvKind) {
			out = append(out, checkQueue(spec, key, h.ForKey(key))...)
		}
		return out
	}
}

func checkQueue(spec QueueSpec, key string, h History) []Violation {
	var ackedOrder []string // Ok-sent messages, send order
	acked := make(map[string]Op)
	maybeSent := make(map[string]Op) // Ambiguous sends
	var delivered []Op               // Ok receives of a message
	byMsg := make(map[string][]Op)
	ambiguousRecvs := 0
	// lastSendIndex is the index of the final send attempt overall: an
	// authoritative empty only counts as a drain when it came after
	// every send, so a transient in-round empty cannot license
	// durability judgment.
	lastSendIndex := -1
	for _, op := range h {
		if op.Kind == spec.SendKind && op.Outcome != Failed {
			lastSendIndex = op.Index
		}
	}
	drainedAt := -1 // index of an authoritative empty after the last send
	for _, op := range h {
		switch op.Kind {
		case spec.SendKind:
			switch op.Outcome {
			case Ok:
				if _, dup := acked[op.Input]; !dup {
					ackedOrder = append(ackedOrder, op.Input)
					acked[op.Input] = op
				}
			case Ambiguous:
				if _, dup := maybeSent[op.Input]; !dup {
					maybeSent[op.Input] = op
				}
			}
		case spec.RecvKind:
			switch {
			case op.Outcome == Ok && op.Note == spec.EmptyNote:
				if op.Index > lastSendIndex && drainedAt < 0 {
					drainedAt = op.Index
				}
			case op.Outcome == Ok && op.Output != "":
				delivered = append(delivered, op)
				byMsg[op.Output] = append(byMsg[op.Output], op)
			case op.Outcome == Ambiguous:
				ambiguousRecvs++
			}
		}
	}

	var out []Violation

	// At-most-once: collect every duplicated message into one
	// violation, as one broker flaw typically duplicates several.
	var dupes []string
	var dupWitness []Op
	msgs := make([]string, 0, len(byMsg))
	for msg := range byMsg {
		msgs = append(msgs, msg)
	}
	sort.Strings(msgs)
	for _, msg := range msgs {
		if ops := byMsg[msg]; len(ops) > 1 {
			dupes = append(dupes, fmt.Sprintf("%s x%d", msg, len(ops)))
			dupWitness = append(dupWitness, ops[0], ops[1])
		}
	}
	if len(dupes) > 0 {
		out = append(out, Violation{
			Invariant: "at-most-once",
			Subject:   key,
			Detail:    fmt.Sprintf("messages delivered more than once: %v", dupes),
			Witness:   witness(dupWitness...),
		})
	}

	// Phantom deliveries: a message from nowhere.
	for _, d := range delivered {
		if _, ok := acked[d.Output]; ok {
			continue
		}
		if _, ok := maybeSent[d.Output]; ok {
			continue
		}
		out = append(out, Violation{
			Invariant: "phantom-delivery",
			Subject:   key,
			Detail:    fmt.Sprintf("message %q delivered but never sent by an acknowledged or ambiguous send", d.Output),
			Witness:   witness(d),
		})
	}

	// FIFO order: deliveries of acknowledged messages must not invert
	// send order. Gaps are legal — an Ambiguous receive may have
	// consumed the skipped message invisibly — but observing message j
	// and later message i < j means two replicas served the same
	// backlog independently.
	if spec.CheckOrder {
		pos := make(map[string]int, len(ackedOrder))
		for i, m := range ackedOrder {
			pos[m] = i
		}
		best := -1
		var bestOp Op
		for _, d := range delivered {
			p, ok := pos[d.Output]
			if !ok {
				continue
			}
			if p < best {
				out = append(out, Violation{
					Invariant: "fifo-order",
					Subject:   key,
					Detail: fmt.Sprintf("message %q delivered after later-sent %q (send order inverted)",
						d.Output, bestOp.Output),
					Witness: witness(acked[d.Output], acked[bestOp.Output], bestOp, d),
				})
				break
			}
			if p > best {
				best, bestOp = p, d
			}
		}
	}

	// Durability: only when the broker authoritatively answered
	// "empty" after the last send — an unreachable backlog is not a
	// lost one, and a safe configuration may trade availability for
	// correctness.
	if drainedAt >= 0 {
		var missing []string
		var missWitness []Op
		for _, m := range ackedOrder {
			if len(byMsg[m]) == 0 {
				missing = append(missing, m)
				if len(missWitness) < 8 {
					missWitness = append(missWitness, acked[m])
				}
			}
		}
		if len(missing) > ambiguousRecvs {
			out = append(out, Violation{
				Invariant: "durability",
				Subject:   key,
				Detail: fmt.Sprintf("acknowledged messages never delivered: [%s] (%d ambiguous receives forgiven)",
					strings.Join(missing, " "), ambiguousRecvs),
				Witness: witness(missWitness...),
			})
		}
	}
	return out
}
