package history

import (
	"fmt"
	"testing"
	"time"
)

// ms builds a duration in milliseconds for compact history literals.
func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// seqOps builds a sequential (non-overlapping) history out of
// (kind, client, key, in, out, outcome) tuples: op i occupies
// [2i ms, 2i+1 ms].
func seqOps(specs ...[6]string) History {
	h := make(History, len(specs))
	for i, s := range specs {
		outcome := Ok
		switch s[5] {
		case "failed":
			outcome = Failed
		case "ambiguous":
			outcome = Ambiguous
		}
		h[i] = Op{
			Index: i, Kind: s[0], Client: s[1], Key: s[2],
			Input: s[3], Output: s[4], Outcome: outcome,
			Invoke: ms(2 * i), Return: ms(2*i + 1),
		}
	}
	return h
}

func sigs(vs []Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Invariant + "|" + v.Subject
	}
	return out
}

func wantNone(t *testing.T, vs []Violation) {
	t.Helper()
	if len(vs) != 0 {
		t.Fatalf("expected a clean history, got %v", sigs(vs))
	}
}

func wantOne(t *testing.T, vs []Violation, invariant, subject string) Violation {
	t.Helper()
	if len(vs) != 1 {
		t.Fatalf("expected exactly [%s|%s], got %v", invariant, subject, sigs(vs))
	}
	if vs[0].Invariant != invariant || vs[0].Subject != subject {
		t.Fatalf("expected %s|%s, got %s|%s: %s", invariant, subject, vs[0].Invariant, vs[0].Subject, vs[0].Detail)
	}
	if len(vs[0].Witness) == 0 {
		t.Fatalf("violation %s|%s carries no witness trace", invariant, subject)
	}
	return vs[0]
}

// TestRegistersLinearizableSequential: the golden known-good history —
// sequential writes acknowledged in order, each read returning the
// latest acknowledged value.
func TestRegistersLinearizableSequential(t *testing.T) {
	h := seqOps(
		[6]string{"put", "c1", "k", "v1", "", "ok"},
		[6]string{"get", "c2", "k", "", "v1", "ok"},
		[6]string{"put", "c1", "k", "v2", "", "ok"},
		[6]string{"get", "c2", "k", "", "v2", "ok"},
	)
	wantNone(t, Registers(RegisterSpec{})(h))
}

// TestRegistersStaleRead: the golden known-violating register history
// — a read observing a value an acknowledged newer write should have
// replaced. The consolidation data-loss class.
func TestRegistersStaleRead(t *testing.T) {
	h := seqOps(
		[6]string{"put", "c1", "k", "v1", "", "ok"},
		[6]string{"put", "c1", "k", "v2", "", "ok"},
		[6]string{"get", "c2", "k", "", "v1", "ok"},
	)
	v := wantOne(t, Registers(RegisterSpec{})(h), "durability", "k")
	if len(v.Witness) < 2 {
		t.Fatalf("stale read witness should name the read and the lost write, got %v", v.Witness)
	}
}

// TestRegistersLostEntirely: every acknowledged write vanished — the
// read finds no value at all.
func TestRegistersLostEntirely(t *testing.T) {
	h := seqOps(
		[6]string{"put", "c1", "k", "v1", "", "ok"},
	)
	read := Op{Index: 1, Kind: "get", Client: "c2", Key: "k", Outcome: Ok, Note: "missing",
		Invoke: ms(10), Return: ms(11)}
	wantOne(t, Registers(RegisterSpec{})(append(h, read)), "durability", "k")
}

// TestRegistersDirtyRead: a read returning a value whose write was
// definitively refused.
func TestRegistersDirtyRead(t *testing.T) {
	h := seqOps(
		[6]string{"put", "c1", "k", "v1", "", "ok"},
		[6]string{"put", "c1", "k", "v2", "", "failed"},
		[6]string{"get", "c2", "k", "", "v2", "ok"},
	)
	v := wantOne(t, Registers(RegisterSpec{})(h), "dirty-read", "k")
	if len(v.Witness) != 2 {
		t.Fatalf("dirty read witness should name the read and the refused write, got %v", v.Witness)
	}
}

// TestRegistersAmbiguousWriteMayApply: a write that timed out may
// legitimately be applied — reading it back is not a linearizability
// violation (SilentWrites reports it separately).
func TestRegistersAmbiguousWriteMayApply(t *testing.T) {
	h := seqOps(
		[6]string{"put", "c1", "k", "v1", "", "ok"},
		[6]string{"put", "c1", "k", "v2", "", "ambiguous"},
		[6]string{"get", "c2", "k", "", "v2", "ok"},
	)
	wantNone(t, Registers(RegisterSpec{})(h))
}

// TestRegistersAmbiguousWriteMayNeverApply: an ambiguous write that
// never shows up is equally fine.
func TestRegistersAmbiguousWriteMayNeverApply(t *testing.T) {
	h := seqOps(
		[6]string{"put", "c1", "k", "v1", "", "ok"},
		[6]string{"put", "c1", "k", "v2", "", "ambiguous"},
		[6]string{"get", "c2", "k", "", "v1", "ok"},
	)
	wantNone(t, Registers(RegisterSpec{})(h))
}

// TestRegistersAmbiguousAppliesLate: an ambiguous write's window is
// open-ended — it may apply after later acknowledged writes (Raft
// committing a timed-out proposal post-heal).
func TestRegistersAmbiguousAppliesLate(t *testing.T) {
	h := seqOps(
		[6]string{"put", "c1", "k", "v1", "", "ambiguous"},
		[6]string{"put", "c1", "k", "v2", "", "ok"},
		[6]string{"get", "c2", "k", "", "v1", "ok"},
	)
	wantNone(t, Registers(RegisterSpec{})(h))
}

// TestRegistersConcurrentReads: two overlapping reads during one
// write may legally observe either side of it, in either order, as
// long as both values existed. Exercises the search rather than the
// fast paths.
func TestRegistersConcurrentReads(t *testing.T) {
	h := History{
		{Index: 0, Kind: "put", Client: "c1", Key: "k", Input: "v1", Outcome: Ok, Invoke: ms(0), Return: ms(1)},
		// A long write overlapping both reads.
		{Index: 1, Kind: "put", Client: "c1", Key: "k", Input: "v2", Outcome: Ok, Invoke: ms(2), Return: ms(10)},
		// Concurrent reads: one sees the new value, the other the old —
		// legal while the reads also overlap each other.
		{Index: 2, Kind: "get", Client: "c2", Key: "k", Output: "v2", Outcome: Ok, Invoke: ms(3), Return: ms(5)},
		{Index: 3, Kind: "get", Client: "c3", Key: "k", Output: "v1", Outcome: Ok, Invoke: ms(4), Return: ms(9)},
	}
	wantNone(t, Registers(RegisterSpec{})(h))

	// The same observations with the reads sequential (v2 read returns
	// before the v1 read starts) violate real-time order: the register
	// went backwards.
	hSeq := History{
		h[0], h[1],
		{Index: 2, Kind: "get", Client: "c2", Key: "k", Output: "v2", Outcome: Ok, Invoke: ms(3), Return: ms(5)},
		{Index: 3, Kind: "get", Client: "c3", Key: "k", Output: "v1", Outcome: Ok, Invoke: ms(6), Return: ms(9)},
	}
	wantOne(t, Registers(RegisterSpec{})(hSeq), "durability", "k")

	// But once the write has returned, observing the old value again is
	// a violation.
	h2 := History{
		h[0], h[1],
		{Index: 2, Kind: "get", Client: "c2", Key: "k", Output: "v1", Outcome: Ok, Invoke: ms(11), Return: ms(12)},
	}
	wantOne(t, Registers(RegisterSpec{})(h2), "durability", "k")
}

// TestRegistersDelete: deletes are writes of absence.
func TestRegistersDelete(t *testing.T) {
	h := History{
		{Index: 0, Kind: "put", Client: "c1", Key: "k", Input: "v1", Outcome: Ok, Invoke: ms(0), Return: ms(1)},
		{Index: 1, Kind: "del", Client: "c1", Key: "k", Outcome: Ok, Invoke: ms(2), Return: ms(3)},
		{Index: 2, Kind: "get", Client: "c2", Key: "k", Outcome: Ok, Note: "missing", Invoke: ms(4), Return: ms(5)},
	}
	wantNone(t, Registers(RegisterSpec{})(h))

	// Reading the deleted value back after the delete returned is a
	// durability violation (resurrection).
	h2 := History{
		h[0], h[1],
		{Index: 2, Kind: "get", Client: "c2", Key: "k", Output: "v1", Outcome: Ok, Invoke: ms(4), Return: ms(5)},
	}
	wantOne(t, Registers(RegisterSpec{})(h2), "durability", "k")
}

// TestRegistersKeyPartitioned: keys are independent registers; a
// violation on one key must not implicate the other.
func TestRegistersKeyPartitioned(t *testing.T) {
	h := seqOps(
		[6]string{"put", "c1", "a", "a1", "", "ok"},
		[6]string{"put", "c2", "b", "b1", "", "ok"},
		[6]string{"put", "c1", "a", "a2", "", "ok"},
		[6]string{"get", "c1", "a", "", "a1", "ok"},
		[6]string{"get", "c2", "b", "", "b1", "ok"},
	)
	wantOne(t, Registers(RegisterSpec{})(h), "durability", "a")
}

// TestRegistersMultipleStaleReads: each offending read yields its own
// violation; the checker keeps judging past the first.
func TestRegistersMultipleStaleReads(t *testing.T) {
	h := seqOps(
		[6]string{"put", "c1", "k", "v1", "", "ok"},
		[6]string{"put", "c1", "k", "v2", "", "ok"},
		[6]string{"get", "c2", "k", "", "v1", "ok"},
		[6]string{"get", "c2", "k", "", "v1", "ok"},
	)
	vs := Registers(RegisterSpec{})(h)
	if len(vs) != 2 {
		t.Fatalf("expected 2 stale-read violations, got %v", sigs(vs))
	}
}

// synthHistory builds a register history with nClients writers and
// one reader issuing interleaved, overlapping operations — the shape
// and size of a campaign round — for benchmarks and the throughput
// smoke test. All operations are linearizable, which is the expensive
// case: the search must prove exhaustion-free success.
func synthHistory(keys, opsPerKey int) History {
	var h History
	idx := 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%d", k)
		last := ""
		for i := 0; i < opsPerKey; i++ {
			val := fmt.Sprintf("%s-v%d", key, i)
			base := time.Duration(idx) * time.Millisecond
			h = append(h, Op{
				Index: idx, Kind: "put", Client: "c1", Key: key, Input: val,
				Outcome: Ok, Invoke: base, Return: base + ms(2),
			})
			idx++
			// A concurrent read overlapping the write: may see either
			// value.
			out := val
			if i%2 == 0 && last != "" {
				out = last
			}
			h = append(h, Op{
				Index: idx, Kind: "get", Client: "c2", Key: key, Output: out,
				Outcome: Ok, Invoke: base + ms(1), Return: base + ms(2),
			})
			idx++
			last = val
		}
	}
	return h
}

// TestLinearizabilityThroughputSmoke bounds the checker's cost at
// campaign shape: a full round's history must check in well under a
// second, or the shared layer would throttle the 43x sim-clock
// speedup.
func TestLinearizabilityThroughputSmoke(t *testing.T) {
	h := synthHistory(4, 40)
	check := Registers(RegisterSpec{})
	//neat:allow realclock -- throughput smoke: times the checker on the wall clock
	start := time.Now()
	for i := 0; i < 50; i++ {
		wantNone(t, check(h))
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("50 checks of a %d-op history took %v; the checker is too slow for campaign throughput", len(h), took)
	}
}

// TestLinearizabilityAllocs pins the checker's allocation budget over
// a campaign-round-sized history: interned values, packed memo keys,
// and pooled masks hold the full multi-key check to a few dozen
// allocations where the string-keyed memo paid thousands. The ceiling
// leaves ~3x headroom over the measured cost so it trips on
// regressions, not noise. (AllocsPerRun forces GOMAXPROCS to 1, so
// this measures the serial path; the parallel path adds only a fixed
// handful of goroutine and result-slot allocations.)
func TestLinearizabilityAllocs(t *testing.T) {
	h := synthHistory(4, 40)
	check := Registers(RegisterSpec{})
	wantNone(t, check(h))
	avg := testing.AllocsPerRun(5, func() {
		if vs := check(h); len(vs) != 0 {
			t.Fatalf("benchmark history must be clean, got %v", sigs(vs))
		}
	})
	if avg > 150 {
		t.Fatalf("checking a %d-op history allocates %.0f objects, budget is 150", len(h), avg)
	}
}

// BenchmarkLinearizability measures the Wing & Gong search with
// memoized state dedup over a campaign-round-sized register history.
func BenchmarkLinearizability(b *testing.B) {
	h := synthHistory(4, 40)
	check := Registers(RegisterSpec{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := check(h); len(vs) != 0 {
			b.Fatalf("benchmark history must be clean, got %v", sigs(vs))
		}
	}
	b.ReportMetric(float64(len(h))*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}
