package history

import (
	"fmt"
	"sort"
	"strings"
)

// ConvergeSpec parameterizes the eventual-convergence checker.
type ConvergeSpec struct {
	// ReadKind is the final per-replica observation ("read" for a
	// single value, "versions" for a sibling set): Node names the
	// replica, Output the canonical observed state (sibling values
	// joined with ValSep), Aux the matching per-sibling auxiliary
	// payloads (vector clocks) joined with AuxSep.
	ReadKind string
	// DisagreeInvariant names the breach when replicas end divergent
	// ("convergence" for anti-entropy stores, "replica-agreement" for
	// replicated object stores).
	DisagreeInvariant string
	// WriteKind, when non-empty, enables the acknowledged-write
	// supersession check over operations of this kind.
	WriteKind string
	// OnlyFaulted restricts the supersession check to writes
	// acknowledged while faults were active — the paper's condition
	// for consolidation data loss.
	OnlyFaulted bool
	// Supersedes reports whether a surviving version's auxiliary
	// payload causally dominates (or equals) an acknowledged write's.
	// Parameterizing by vector-clock supersession keeps the checker
	// generic: last-writer-wins stores simply fail it for concurrent
	// pairs. nil disables the supersession check.
	Supersedes func(survivorAux, ackedAux string) bool
	// ValSep and AuxSep split Output and Aux into siblings
	// (default "," and ";").
	ValSep, AuxSep string
}

func (s *ConvergeSpec) defaults() {
	if s.ReadKind == "" {
		s.ReadKind = "versions"
	}
	if s.DisagreeInvariant == "" {
		s.DisagreeInvariant = "convergence"
	}
	if s.ValSep == "" {
		s.ValSep = ","
	}
	if s.AuxSep == "" {
		s.AuxSep = ";"
	}
}

// Convergence returns the eventual-consistency check: after the heal,
// the last observation of every replica must agree on each key's
// state, and no write acknowledged during a fault may be silently
// consolidated away — it must either survive in the final state or be
// causally superseded by a survivor (per spec.Supersedes). A write
// that is concurrent with every survivor yet missing is the paper's
// acknowledged-write data loss.
func Convergence(spec ConvergeSpec) Check {
	spec.defaults()
	return func(h History) []Violation {
		var out []Violation
		kinds := []string{spec.ReadKind}
		if spec.WriteKind != "" {
			kinds = append(kinds, spec.WriteKind)
		}
		for _, key := range h.Keys(kinds...) {
			out = append(out, checkConvergence(spec, key, h.ForKey(key))...)
		}
		return out
	}
}

func checkConvergence(spec ConvergeSpec, key string, h History) []Violation {
	// The last Ok observation per replica is its final state.
	finals := make(map[string]Op)
	var nodes []string
	for _, op := range h {
		if op.Kind != spec.ReadKind || op.Outcome != Ok || op.Node == "" {
			continue
		}
		if _, seen := finals[op.Node]; !seen {
			nodes = append(nodes, op.Node)
		}
		finals[op.Node] = op
	}
	sort.Strings(nodes)
	if len(nodes) == 0 {
		return nil
	}

	var out []Violation
	agreed := true
	first := finals[nodes[0]]
	for _, n := range nodes[1:] {
		if finals[n].Output != first.Output {
			agreed = false
			break
		}
	}
	if !agreed {
		parts := make([]string, len(nodes))
		wops := make([]Op, 0, len(nodes))
		for i, n := range nodes {
			parts[i] = fmt.Sprintf("%s=%q", n, finals[n].Output)
			wops = append(wops, finals[n])
		}
		out = append(out, Violation{
			Invariant: spec.DisagreeInvariant,
			Subject:   key,
			Detail:    fmt.Sprintf("replicas diverged after the heal: %s", strings.Join(parts, " ")),
			Witness:   witness(wops...),
		})
		return out
	}

	if spec.WriteKind == "" || spec.Supersedes == nil {
		return out
	}
	survivors := splitSep(first.Output, spec.ValSep)
	survivorAux := splitSep(first.Aux, spec.AuxSep)
	inFinal := make(map[string]bool, len(survivors))
	for _, v := range survivors {
		inFinal[v] = true
	}

	// The last acknowledged write per client is the one its issuer
	// relies on surviving.
	lastAcked := make(map[string]Op)
	var clients []string
	for _, op := range h {
		if op.Kind != spec.WriteKind || op.Outcome != Ok {
			continue
		}
		if spec.OnlyFaulted && op.Faults == 0 {
			continue
		}
		if _, seen := lastAcked[op.Client]; !seen {
			clients = append(clients, op.Client)
		}
		lastAcked[op.Client] = op
	}
	sort.Strings(clients)
	for _, c := range clients {
		w := lastAcked[c]
		if inFinal[w.Input] {
			continue
		}
		superseded := false
		for _, aux := range survivorAux {
			if spec.Supersedes(aux, w.Aux) {
				superseded = true
				break
			}
		}
		if !superseded {
			out = append(out, Violation{
				Invariant: "acked-write-survives",
				Subject:   key,
				Detail: fmt.Sprintf("acknowledged write %q (by %s, #%d) was concurrent with every survivor yet consolidated away (final state %q)",
					w.Input, w.Client, w.Index, first.Output),
				Witness: witness(w, first),
			})
		}
	}
	return out
}

func splitSep(s, sep string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, sep)
}
