package history

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TasksSpec parameterizes the data-plane task/job execution checker —
// the invariants of the paper's HDFS, MooseFS, MapReduce, and job
// scheduler failures.
type TasksSpec struct {
	// SubmitKind is the client's acknowledged unit-of-work request
	// ("submit", "run" — or "write" for a file system, whose pipeline
	// write is its submission).
	SubmitKind string
	// ExecKind marks observed execution evidence ("exec"): a completion
	// notification (FinalNote) or a per-node execution tally
	// (CountNote).
	ExecKind string
	// FinalNote marks an ExecKind op that is one job-completion
	// notification delivered to the client ("final"). More than one per
	// job is the MAPREDUCE-4819 double execution.
	FinalNote string
	// CountNote marks an ExecKind op whose Output is the per-node
	// execution tally the client read from the node named by Op.Node
	// ("count").
	CountNote string
	// ScheduleKind, when non-empty, enables the HDFS-577/HDFS-1384
	// placement rule: an op of this kind is the system's placement
	// answer — Node the chosen node, Input the comma-separated list of
	// nodes the client had already reported unreachable. Offering a
	// node from its own exclusion list is scheduling work onto a node
	// the system was told nobody can use.
	ScheduleKind string
	// ReadKind is the observation verb the MetaNote rule inspects
	// ("read").
	ReadKind string
	// MetaNote, when non-empty, enables the MooseFS #131/#132 rule: a
	// definitively failed ReadKind op carrying this note observed a
	// namespace that asserts the file exists while no replica serves
	// its data — the client-visible inconsistent state.
	MetaNote string
}

func (s *TasksSpec) defaults() {
	if s.SubmitKind == "" {
		s.SubmitKind = "submit"
	}
	if s.ExecKind == "" {
		s.ExecKind = "exec"
	}
	if s.FinalNote == "" {
		s.FinalNote = "final"
	}
	if s.CountNote == "" {
		s.CountNote = "count"
	}
	if s.ReadKind == "" {
		s.ReadKind = "read"
	}
}

// Tasks returns the exactly-once task/job execution check over
// submit/execute histories:
//
//   - dup-execution: a job's completion was delivered to the client
//     more than once (two AppMaster attempts both finishing —
//     MAPREDUCE-4819 / Figure 3).
//   - exactly-once: a node executed a job more times than the client's
//     acknowledged-or-ambiguous submissions license — a definitively
//     "failed" job that ran (DKron #379's misleading status), or a
//     user retry doubling work the system had already done.
//   - lost-ack: an acknowledged submission with execution evidence
//     recorded and every piece of it empty — the job was accepted and
//     then never ran anywhere.
//   - unreachable-scheduling (ScheduleKind set): the system placed
//     work on a node listed in the very exclusion list the client sent
//     with the request (HDFS-1384's same-rack re-offer, HDFS-577's
//     simplex-dead node).
//   - namespace-inconsistency (MetaNote set): the namespace asserts a
//     file exists while no listed replica serves it (MooseFS
//     #131/#132).
func Tasks(spec TasksSpec) Check {
	spec.defaults()
	return func(h History) []Violation {
		var out []Violation
		for _, key := range h.Keys(spec.SubmitKind, spec.ExecKind) {
			out = append(out, checkTaskKey(spec, key, h.ForKey(key))...)
		}
		if spec.ScheduleKind != "" {
			out = append(out, checkUnreachableScheduling(spec, h)...)
		}
		if spec.MetaNote != "" {
			out = append(out, checkNamespace(spec, h)...)
		}
		return out
	}
}

func checkTaskKey(spec TasksSpec, key string, h History) []Violation {
	var submits []Op
	allowed := 0 // submissions that may legitimately have executed
	okSubmits := 0
	var finals []Op
	var counts []Op
	executedAnywhere := false
	for _, op := range h {
		switch op.Kind {
		case spec.SubmitKind:
			submits = append(submits, op)
			if op.Outcome != Failed {
				allowed++
			}
			if op.Outcome == Ok {
				okSubmits++
			}
		case spec.ExecKind:
			if op.Outcome != Ok {
				continue
			}
			switch op.Note {
			case spec.FinalNote:
				finals = append(finals, op)
				executedAnywhere = true
			case spec.CountNote:
				counts = append(counts, op)
				if n, err := strconv.Atoi(op.Output); err == nil && n > 0 {
					executedAnywhere = true
				}
			}
		}
	}
	if len(submits) == 0 {
		return nil
	}

	var out []Violation

	// Completion delivered more than once: the user was told "done"
	// twice — double execution with duplicated output (Figure 3).
	if len(finals) > 1 {
		w := finals
		if len(submits) > 0 {
			w = append([]Op{submits[0]}, w...)
		}
		out = append(out, Violation{
			Invariant: "dup-execution",
			Subject:   key,
			Detail: fmt.Sprintf("job completion reported to the client %d times (attempts %s) — the job executed more than once",
				len(finals), finalAttempts(finals)),
			Witness: witness(w...),
		})
	}

	// Per-node tallies above the licensed submission count: either a
	// "failed" submission actually ran (the misleading status the user
	// will retry) or a retry doubled already-done work.
	for _, c := range counts {
		n, err := strconv.Atoi(c.Output)
		if err != nil || n <= allowed {
			continue
		}
		w := append(append([]Op{}, submits...), c)
		out = append(out, Violation{
			Invariant: "exactly-once",
			Subject:   key,
			Detail: fmt.Sprintf("node %s executed the job %d time(s) but only %d submission(s) were acknowledged or ambiguous — a definitively failed submission ran, or acknowledged work was re-executed",
				c.Node, n, allowed),
			Witness: witness(w...),
		})
	}

	// An acknowledged submission for which every piece of recorded
	// execution evidence is empty: the ack was a lie, the job is gone.
	// Judged only when evidence WAS recorded (finals or tallies) — an
	// unobserved job is unobserved, not lost.
	if okSubmits > 0 && !executedAnywhere && len(finals)+len(counts) > 0 {
		var firstOk Op
		for _, s := range submits {
			if s.Outcome == Ok {
				firstOk = s
				break
			}
		}
		w := []Op{firstOk}
		for i, c := range counts {
			if i >= 6 {
				break
			}
			w = append(w, c)
		}
		out = append(out, Violation{
			Invariant: "lost-ack",
			Subject:   key,
			Detail: fmt.Sprintf("submission was acknowledged but no execution evidence exists on any node (%d tally reads, %d completion notifications)",
				len(counts), len(finals)),
			Witness: witness(w...),
		})
	}
	return out
}

func finalAttempts(finals []Op) string {
	parts := make([]string, len(finals))
	for i, f := range finals {
		parts[i] = f.Output
	}
	return strings.Join(parts, ",")
}

// checkUnreachableScheduling flags placement answers naming a node the
// requester itself had excluded as unreachable: one violation per
// offending node (the node, not the request's key, is the stable
// subject).
func checkUnreachableScheduling(spec TasksSpec, h History) []Violation {
	var out []Violation
	flagged := make(map[string]bool)
	for _, op := range h {
		if op.Kind != spec.ScheduleKind || op.Outcome != Ok || op.Node == "" || op.Input == "" {
			continue
		}
		excluded := false
		for _, ex := range strings.Split(op.Input, ",") {
			if strings.TrimSpace(ex) == op.Node {
				excluded = true
				break
			}
		}
		if !excluded || flagged[op.Node] {
			continue
		}
		flagged[op.Node] = true
		// The failed attempt that earned the node its exclusion, as
		// witness context.
		w := []Op{op}
		for _, prior := range h {
			if prior.Index < op.Index && prior.Node == op.Node && prior.Outcome != Ok {
				w = append(w, prior)
			}
		}
		if len(w) > 3 {
			w = append(w[:1], w[len(w)-2:]...)
		}
		out = append(out, Violation{
			Invariant: "unreachable-scheduling",
			Subject:   op.Node,
			Detail: fmt.Sprintf("placement for %q re-offered node %s from the request's own exclusion list [%s] — work scheduled onto a node the system was told is unreachable",
				op.Key, op.Node, op.Input),
			Witness: witness(w...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Subject < out[j].Subject })
	return out
}

// checkNamespace flags the MooseFS client-visible inconsistency: the
// namespace lists replicas for a file, yet the read definitively
// failed to fetch the data from any of them. One violation per file,
// witnessed by the read and the committed write it orphans.
func checkNamespace(spec TasksSpec, h History) []Violation {
	var out []Violation
	flagged := make(map[string]bool)
	for _, op := range h {
		if op.Kind != spec.ReadKind || op.Note != spec.MetaNote || op.Outcome != Failed || flagged[op.Key] {
			continue
		}
		flagged[op.Key] = true
		w := []Op{op}
		for _, prior := range h {
			if prior.Index < op.Index && prior.Key == op.Key && prior.Kind == spec.SubmitKind && prior.Outcome == Ok {
				w = []Op{prior, op}
			}
		}
		out = append(out, Violation{
			Invariant: "namespace-inconsistency",
			Subject:   op.Key,
			Detail: fmt.Sprintf("namespace asserts %q exists but no listed replica serves its data — the file system looks inconsistent to the client",
				op.Key),
			Witness: witness(w...),
		})
	}
	return out
}
