package history

import (
	"sync"
	"testing"
	"time"

	"neat/internal/clock"
)

// TestRecorderOrdering: indices follow Begin order, timestamps come
// from the clock, and fault counts stamp the ops begun while set.
func TestRecorderOrdering(t *testing.T) {
	sim := clock.NewSim()
	defer sim.Stop()
	clock.AcquireScoped(sim)
	defer clock.ReleaseScoped(sim)

	rec := NewRecorder(sim)
	a := rec.Begin(Op{Client: "c1", Kind: "put", Key: "k", Input: "v1"})
	sim.Sleep(5 * time.Millisecond)
	a.End(Ok, "")
	rec.SetFaults(2)
	b := rec.Begin(Op{Client: "c2", Kind: "get", Key: "k"})
	sim.Sleep(3 * time.Millisecond)
	b.EndNote(Ok, "v1", "fresh")
	rec.SetFaults(0)
	c := rec.Begin(Op{Client: "c1", Kind: "put", Key: "k", Input: "v2"})
	_ = c // never completed: stays ambiguous with no response

	h := rec.History()
	if len(h) != 3 {
		t.Fatalf("recorded %d ops, want 3", len(h))
	}
	if h[0].Index != 0 || h[1].Index != 1 || h[2].Index != 2 {
		t.Fatalf("indices not in begin order: %v", h)
	}
	if h[0].Outcome != Ok || h[0].Invoke != 0 || h[0].Return != 5*time.Millisecond {
		t.Fatalf("op 0 mis-stamped: %+v", h[0])
	}
	if h[1].Faults != 2 || h[1].Note != "fresh" || h[1].Output != "v1" {
		t.Fatalf("op 1 mis-stamped: %+v", h[1])
	}
	if h[1].Invoke != 5*time.Millisecond || h[1].Return != 8*time.Millisecond {
		t.Fatalf("op 1 window wrong: %+v", h[1])
	}
	if h[2].Outcome != Ambiguous || h[2].Return != NoReturn || h[2].Faults != 0 {
		t.Fatalf("in-flight op must stand as ambiguous with no response: %+v", h[2])
	}
}

// TestRecorderConcurrent hammers one recorder from many goroutines —
// meaningful under -race — and checks that indices stay unique and
// dense.
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(clock.Real{})
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				ref := rec.Begin(Op{Client: "c", Kind: "put", Key: "k"})
				rec.SetFaults(i % 3)
				ref.End(Ok, "")
			}
		}(w)
	}
	wg.Wait()
	h := rec.History()
	if len(h) != workers*each {
		t.Fatalf("recorded %d ops, want %d", len(h), workers*each)
	}
	for i, op := range h {
		if op.Index != i {
			t.Fatalf("index %d at position %d", op.Index, i)
		}
		if op.Return == NoReturn {
			t.Fatalf("op %d never completed", i)
		}
	}
}

// TestOutcomeOf pins the uniform classification rule.
func TestOutcomeOf(t *testing.T) {
	if got := OutcomeOf(nil, false); got != Ok {
		t.Fatalf("nil error = %v, want ok", got)
	}
	err := errFake("boom")
	if got := OutcomeOf(err, true); got != Ambiguous {
		t.Fatalf("maybe-executed error = %v, want ambiguous", got)
	}
	if got := OutcomeOf(err, false); got != Failed {
		t.Fatalf("definitive error = %v, want failed", got)
	}
}

type errFake string

func (e errFake) Error() string { return string(e) }
