package history

import (
	"fmt"
	"sort"
	"strconv"
	"time"
)

// MutexSpec parameterizes the mutual-exclusion / lease checker.
type MutexSpec struct {
	// LockKind acquires the named lock ("lock").
	LockKind string
	// UnlockKind releases it ("unlock").
	UnlockKind string
	// LeaseTTL, when positive, gives holds lease semantics against
	// silence itself: a holder whose last recorded invocation is more
	// than LeaseTTL before a competing grant is treated as expired and
	// released silently, not double-granted. This is what makes a
	// paused (GC-stalled) holder checkable — the service legitimately
	// reclaims its lease and grants the lock onward, and only a grant
	// while the holder was recently active (or a later blind release by
	// the stale holder corrupting the new grant) counts as a breach.
	// Zero keeps the strict rule: holds last until unlocked or
	// abandoned by ambiguity.
	LeaseTTL time.Duration
}

func (s *MutexSpec) defaults() {
	if s.LockKind == "" {
		s.LockKind = "lock"
	}
	if s.UnlockKind == "" {
		s.UnlockKind = "unlock"
	}
}

// MutualExclusion returns the lock-service check: at no point may two
// clients hold the same exclusive lock. Holds are replayed from the
// history in invocation order with lease semantics:
//
//   - An Ok lock grants the hold; granting while another client still
//     holds is the violation.
//   - An Ok or Ambiguous unlock releases the hold (an unlock the
//     coordinator may have applied cannot be relied on either way, and
//     a correct client stops assuming it holds).
//   - Any Ambiguous operation by a client abandons all its holds: a
//     client whose requests are timing out must assume its lease
//     renewals fare no better — the Chubby rule — so a subsequent
//     grant to another client is a legitimate lease handoff, not a
//     double grant.
//   - With LeaseTTL set, a holder silent (no invocation of any kind)
//     for longer than the TTL before a competing grant has expired:
//     its hold is released silently rather than flagged.
func MutualExclusion(spec MutexSpec) Check {
	spec.defaults()
	return func(h History) []Violation {
		var out []Violation
		// holders: lock name -> client -> granting op.
		holders := make(map[string]map[string]Op)
		// lastAct: client -> invocation time of its latest op, the
		// checker's proxy for liveness under LeaseTTL.
		lastAct := make(map[string]time.Duration)
		for _, op := range h {
			lastAct[op.Client] = op.Invoke
			if op.Outcome == Ambiguous {
				for _, m := range holders {
					delete(m, op.Client)
				}
				continue
			}
			switch op.Kind {
			case spec.LockKind:
				if op.Outcome != Ok {
					continue
				}
				m := holders[op.Key]
				if m == nil {
					m = make(map[string]Op)
					holders[op.Key] = m
				}
				others := make([]string, 0, len(m))
				for other := range m {
					if other == op.Client {
						continue
					}
					if spec.LeaseTTL > 0 && op.Invoke-lastAct[other] > spec.LeaseTTL {
						// Expired: the holder went dark past its lease
						// (paused, crashed, wedged). The service
						// reclaiming it is correct behavior.
						delete(m, other)
						continue
					}
					others = append(others, other)
				}
				sort.Strings(others)
				for _, other := range others {
					grant := m[other]
					out = append(out, Violation{
						Invariant: "mutual-exclusion",
						Subject:   op.Key,
						Detail: fmt.Sprintf("lock %q granted to %s (#%d) while %s still held it (granted #%d)",
							op.Key, op.Client, op.Index, other, grant.Index),
						Witness: witness(grant, op),
					})
				}
				m[op.Client] = op
			case spec.UnlockKind:
				if op.Outcome != Ok {
					continue
				}
				if m := holders[op.Key]; m != nil {
					delete(m, op.Client)
				}
			}
		}
		return out
	}
}

// UniqueOutputs returns the duplicate-issue check for counter-like
// services: every Ok operation of the given kind must return a value
// no other operation received — a sequence number or ticket issued
// twice (split coordination views granting from the same state) is
// the violation. The invariant parameter names the breach in reports
// ("unique-sequence").
func UniqueOutputs(kind, invariant string) Check {
	return func(h History) []Violation {
		var out []Violation
		// seen: key -> output -> first op that drew it.
		seen := make(map[string]map[string]Op)
		for _, op := range h {
			if op.Kind != kind || op.Outcome != Ok {
				continue
			}
			m := seen[op.Key]
			if m == nil {
				m = make(map[string]Op)
				seen[op.Key] = m
			}
			if first, dup := m[op.Output]; dup {
				out = append(out, Violation{
					Invariant: invariant,
					Subject:   op.Key,
					Detail: fmt.Sprintf("value %s issued twice (first to %s #%d, again to %s #%d)",
						strconv.Quote(op.Output), first.Client, first.Index, op.Client, op.Index),
					Witness: witness(first, op),
				})
				continue
			}
			m[op.Output] = op
		}
		return out
	}
}
