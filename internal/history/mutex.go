package history

import (
	"fmt"
	"sort"
	"strconv"
)

// MutexSpec parameterizes the mutual-exclusion / lease checker.
type MutexSpec struct {
	// LockKind acquires the named lock ("lock").
	LockKind string
	// UnlockKind releases it ("unlock").
	UnlockKind string
}

func (s *MutexSpec) defaults() {
	if s.LockKind == "" {
		s.LockKind = "lock"
	}
	if s.UnlockKind == "" {
		s.UnlockKind = "unlock"
	}
}

// MutualExclusion returns the lock-service check: at no point may two
// clients hold the same exclusive lock. Holds are replayed from the
// history in invocation order with lease semantics:
//
//   - An Ok lock grants the hold; granting while another client still
//     holds is the violation.
//   - An Ok or Ambiguous unlock releases the hold (an unlock the
//     coordinator may have applied cannot be relied on either way, and
//     a correct client stops assuming it holds).
//   - Any Ambiguous operation by a client abandons all its holds: a
//     client whose requests are timing out must assume its lease
//     renewals fare no better — the Chubby rule — so a subsequent
//     grant to another client is a legitimate lease handoff, not a
//     double grant.
func MutualExclusion(spec MutexSpec) Check {
	spec.defaults()
	return func(h History) []Violation {
		var out []Violation
		// holders: lock name -> client -> granting op.
		holders := make(map[string]map[string]Op)
		for _, op := range h {
			if op.Outcome == Ambiguous {
				for _, m := range holders {
					delete(m, op.Client)
				}
				continue
			}
			switch op.Kind {
			case spec.LockKind:
				if op.Outcome != Ok {
					continue
				}
				m := holders[op.Key]
				if m == nil {
					m = make(map[string]Op)
					holders[op.Key] = m
				}
				others := make([]string, 0, len(m))
				for other := range m {
					if other != op.Client {
						others = append(others, other)
					}
				}
				sort.Strings(others)
				for _, other := range others {
					grant := m[other]
					out = append(out, Violation{
						Invariant: "mutual-exclusion",
						Subject:   op.Key,
						Detail: fmt.Sprintf("lock %q granted to %s (#%d) while %s still held it (granted #%d)",
							op.Key, op.Client, op.Index, other, grant.Index),
						Witness: witness(grant, op),
					})
				}
				m[op.Client] = op
			case spec.UnlockKind:
				if op.Outcome != Ok {
					continue
				}
				if m := holders[op.Key]; m != nil {
					delete(m, op.Client)
				}
			}
		}
		return out
	}
}

// UniqueOutputs returns the duplicate-issue check for counter-like
// services: every Ok operation of the given kind must return a value
// no other operation received — a sequence number or ticket issued
// twice (split coordination views granting from the same state) is
// the violation. The invariant parameter names the breach in reports
// ("unique-sequence").
func UniqueOutputs(kind, invariant string) Check {
	return func(h History) []Violation {
		var out []Violation
		// seen: key -> output -> first op that drew it.
		seen := make(map[string]map[string]Op)
		for _, op := range h {
			if op.Kind != kind || op.Outcome != Ok {
				continue
			}
			m := seen[op.Key]
			if m == nil {
				m = make(map[string]Op)
				seen[op.Key] = m
			}
			if first, dup := m[op.Output]; dup {
				out = append(out, Violation{
					Invariant: invariant,
					Subject:   op.Key,
					Detail: fmt.Sprintf("value %s issued twice (first to %s #%d, again to %s #%d)",
						strconv.Quote(op.Output), first.Client, first.Index, op.Client, op.Index),
					Witness: witness(first, op),
				})
				continue
			}
			m[op.Output] = op
		}
		return out
	}
}
