// Package neat is a Go implementation of NEAT, the network-partitioning
// testing framework from "An Analysis of Network-Partitioning Failures
// in Cloud Systems" (OSDI 2018), together with the study's failure
// dataset and a family of simulated distributed systems that reproduce
// the studied failures.
//
// The package re-exports the testing framework's public surface: the
// test Engine, the Partitioner API (complete, partial, and simplex
// partitions; heal), the ISystem lifecycle interface, and node/role
// types. The simulated systems, the failure catalog (Tables 1-13), and
// the executable failure scenarios (Table 15, Figures 2/3/5/6) live in
// internal packages and are exercised through the example programs in
// examples/, the tools in cmd/, and the benchmark harness in
// bench_test.go.
//
// A minimal test looks like the paper's Listing 1:
//
//	eng := neat.NewEngine(neat.Options{})
//	// declare nodes, deploy a system implementing neat.ISystem...
//	p, _ := eng.Partial([]neat.NodeID{"s1", "client1"}, []neat.NodeID{"s2", "client2"})
//	// drive clients on both sides, then:
//	_ = eng.Heal(p)
//	// verify invariants
package neat

import (
	"neat/internal/core"
	"neat/internal/netsim"
)

// NodeID identifies a host on the simulated fabric.
type NodeID = netsim.NodeID

// Engine is NEAT's central test engine: it owns the fabric, deploys
// systems, injects and heals partitions, crashes nodes, and records
// the manifestation sequence.
type Engine = core.Engine

// Options configures an Engine.
type Options = core.Options

// Backend selects the partitioner implementation.
type Backend = core.Backend

// The two partitioner backends, mirroring the paper's OpenFlow and
// iptables implementations.
const (
	SwitchBackend   = core.SwitchBackend
	FirewallBackend = core.FirewallBackend
)

// Partition is a handle to an injected fault.
type Partition = core.Partition

// PartitionType is one of the paper's three fault classes or a
// link-level chaos fault.
type PartitionType = core.PartitionType

// The three network-partitioning fault types (Figure 1) plus the
// link-chaos faults (slow, lossy, and flaky links; flapping
// partitions) injected through Engine.Slow/Lossy/Flaky/Flap.
const (
	CompletePartition = core.CompletePartition
	PartialPartition  = core.PartialPartition
	SimplexPartition  = core.SimplexPartition
	SlowPartition     = core.SlowPartition
	LossyPartition    = core.LossyPartition
	FlakyPartition    = core.FlakyPartition
	FlapPartition     = core.FlapPartition
)

// Chaos is a link-degradation spec for Engine.Flaky: added latency and
// jitter, probabilistic loss, duplication, and reordering.
type Chaos = netsim.Chaos

// ISystem is the lifecycle interface systems under test implement.
type ISystem = core.ISystem

// NodeStatus is a system node's externally visible state.
type NodeStatus = core.NodeStatus

// Node is a declared test participant.
type Node = core.Node

// Role classifies nodes (server, client, auxiliary service).
type Role = core.Role

// Node roles.
const (
	RoleServer  = core.RoleServer
	RoleClient  = core.RoleClient
	RoleService = core.RoleService
)

// Trace records a test's globally ordered manifestation sequence.
type Trace = core.Trace

// Event is one trace entry.
type Event = core.Event

// EventKind classifies trace events (Table 8 taxonomy).
type EventKind = core.EventKind

// NewEngine builds an engine with a fresh simulated network.
func NewEngine(opts Options) *Engine { return core.NewEngine(opts) }

// Rest returns the cluster nodes not in group — the paper's
// Partitioner.rest helper.
func Rest(cluster, group []NodeID) []NodeID { return core.Rest(cluster, group) }
