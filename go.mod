module neat

go 1.24
