// Benchmark harness regenerating every table and figure of the paper's
// evaluation. Run with:
//
//	go test -bench=. -benchmem
//
// The BenchmarkTableNN benchmarks regenerate the study tables from the
// encoded dataset (and print them once); the BenchmarkFigure/Listing
// benchmarks execute the live fault-injection reproduction end to end
// per iteration, so their ns/op is the wall-clock cost of one NEAT
// test (partition injection, manifestation, verification).
package neat

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"neat/internal/campaign"
	"neat/internal/catalog"
	"neat/internal/core"
	"neat/internal/election"
	"neat/internal/kvstore"
	"neat/internal/netsim"
	"neat/internal/report"
	"neat/internal/scenarios"
	"neat/internal/switchfab"
)

var printOnce sync.Once

// printTables dumps the regenerated tables once per bench run so the
// numbers are visible next to the timings.
func printTables() {
	printOnce.Do(func() {
		fs := catalog.Load()
		fmt.Println(report.Table1(catalog.Table1(fs)))
		fmt.Println(report.Dist("Table 2. The impacts of the failures.", catalog.Table2(fs)))
		fmt.Printf("catastrophic share: %.1f%%\n\n", catalog.CatastrophicShare(fs))
		fmt.Println(report.Dist("Table 3. Failures involving each system mechanism.", catalog.Table3(fs)))
		fmt.Println(report.Dist("Table 3 (cont). Configuration change breakdown.", catalog.Table3ConfigBreakdown(fs)))
		fmt.Println(report.Dist("Table 4. Leader election flaws.", catalog.Table4(fs)))
		fmt.Println(report.Dist("Table 5. Client access during the partition.", catalog.Table5(fs)))
		fmt.Println(report.Dist("Table 6. Network-partitioning fault types.", catalog.Table6(fs)))
		fmt.Println(report.Dist("Table 7. Minimum events to cause a failure.", catalog.Table7(fs)))
		fmt.Println(report.Dist("Table 8. Event involvement.", catalog.Table8(fs)))
		fmt.Println(report.Dist("Table 9. Ordering characteristics.", catalog.Table9(fs)))
		fmt.Println(report.Dist("Table 10. Connectivity during the partition.", catalog.Table10(fs)))
		fmt.Println(report.Dist("Table 11. Timing constraints.", catalog.Table11(fs)))
		fmt.Println(report.Table12(catalog.Table12(fs)))
		fmt.Println(report.Dist("Table 13. Nodes needed to reproduce.", catalog.Table13(fs)))
		fmt.Println(report.Findings(catalog.ComputeFindings(fs)))
	})
}

func benchTable(b *testing.B, gen func([]*catalog.Failure) int) {
	printTables()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs := catalog.Load()
		if gen(fs) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable01 regenerates the studied-systems table.
func BenchmarkTable01(b *testing.B) {
	benchTable(b, func(fs []*catalog.Failure) int { return len(catalog.Table1(fs)) })
}

// BenchmarkTable02 regenerates the impact distribution.
func BenchmarkTable02(b *testing.B) {
	benchTable(b, func(fs []*catalog.Failure) int { return len(catalog.Table2(fs)) })
}

// BenchmarkTable03 regenerates the mechanism distribution.
func BenchmarkTable03(b *testing.B) {
	benchTable(b, func(fs []*catalog.Failure) int { return len(catalog.Table3(fs)) })
}

// BenchmarkTable04 regenerates the leader-election flaw distribution.
func BenchmarkTable04(b *testing.B) {
	benchTable(b, func(fs []*catalog.Failure) int { return len(catalog.Table4(fs)) })
}

// BenchmarkTable05 regenerates the client-access distribution.
func BenchmarkTable05(b *testing.B) {
	benchTable(b, func(fs []*catalog.Failure) int { return len(catalog.Table5(fs)) })
}

// BenchmarkTable06 regenerates the partition-type distribution.
func BenchmarkTable06(b *testing.B) {
	benchTable(b, func(fs []*catalog.Failure) int { return len(catalog.Table6(fs)) })
}

// BenchmarkTable07 regenerates the event-count distribution.
func BenchmarkTable07(b *testing.B) {
	benchTable(b, func(fs []*catalog.Failure) int { return len(catalog.Table7(fs)) })
}

// BenchmarkTable08 regenerates the event-involvement distribution.
func BenchmarkTable08(b *testing.B) {
	benchTable(b, func(fs []*catalog.Failure) int { return len(catalog.Table8(fs)) })
}

// BenchmarkTable09 regenerates the ordering distribution.
func BenchmarkTable09(b *testing.B) {
	benchTable(b, func(fs []*catalog.Failure) int { return len(catalog.Table9(fs)) })
}

// BenchmarkTable10 regenerates the connectivity distribution.
func BenchmarkTable10(b *testing.B) {
	benchTable(b, func(fs []*catalog.Failure) int { return len(catalog.Table10(fs)) })
}

// BenchmarkTable11 regenerates the timing distribution.
func BenchmarkTable11(b *testing.B) {
	benchTable(b, func(fs []*catalog.Failure) int { return len(catalog.Table11(fs)) })
}

// BenchmarkTable12 regenerates the flaw-class table.
func BenchmarkTable12(b *testing.B) {
	benchTable(b, func(fs []*catalog.Failure) int { return len(catalog.Table12(fs)) })
}

// BenchmarkTable13 regenerates the nodes-to-reproduce table.
func BenchmarkTable13(b *testing.B) {
	benchTable(b, func(fs []*catalog.Failure) int { return len(catalog.Table13(fs)) })
}

// BenchmarkTable14 renders Appendix A.
func BenchmarkTable14(b *testing.B) {
	benchTable(b, func(fs []*catalog.Failure) int {
		return len(report.Appendix("Table 14.", catalog.Table14(fs), false))
	})
}

// BenchmarkTable15 executes the full NEAT scenario suite — the live
// regeneration of Appendix B. One iteration = 32 fault-injection
// tests against the seven simulated systems.
func BenchmarkTable15(b *testing.B) {
	// Bound concurrency: dozens of engines with live heartbeaters can
	// starve each other and fake partitions.
	sem := make(chan struct{}, 8)
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		var mu sync.Mutex
		reproduced := 0
		var failed []string
		for _, s := range scenarios.Table15Scenarios() {
			wg.Add(1)
			go func(s scenarios.Scenario) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if err := s.Run(); err == nil {
					mu.Lock()
					reproduced++
					mu.Unlock()
				} else {
					mu.Lock()
					failed = append(failed, fmt.Sprintf("%s: %v", s.Name, err))
					mu.Unlock()
				}
			}(s)
		}
		wg.Wait()
		if reproduced != 32 {
			b.Fatalf("reproduced %d of 32 failures; failed: %v", reproduced, failed)
		}
	}
}

func benchScenario(b *testing.B, run func() error) {
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2DirtyRead reproduces the VoltDB dirty read.
func BenchmarkFigure2DirtyRead(b *testing.B) {
	benchScenario(b, scenarios.DirtyReadAtDeposedLeader)
}

// BenchmarkFigure3DoubleExecution reproduces the MapReduce double
// execution.
func BenchmarkFigure3DoubleExecution(b *testing.B) {
	benchScenario(b, scenarios.MapReduceDoubleExecution)
}

// BenchmarkFigure5SemaphoreDoubleLocking reproduces the Ignite
// semaphore violation.
func BenchmarkFigure5SemaphoreDoubleLocking(b *testing.B) {
	benchScenario(b, scenarios.SemaphoreDoubleLocking)
}

// BenchmarkFigure6ActiveMQHang reproduces the ActiveMQ unavailability.
func BenchmarkFigure6ActiveMQHang(b *testing.B) {
	benchScenario(b, scenarios.ActiveMQPartialPartitionHang)
}

// BenchmarkListing1ElasticsearchDataLoss reproduces Listing 1.
func BenchmarkListing1ElasticsearchDataLoss(b *testing.B) {
	benchScenario(b, scenarios.SplitBrainDataLoss)
}

// BenchmarkListing2DoubleDequeue reproduces Listing 2.
func BenchmarkListing2DoubleDequeue(b *testing.B) {
	benchScenario(b, scenarios.ActiveMQDoubleDequeue)
}

// --- framework microbenchmarks and ablations ---

// BenchmarkPartitionInjectSwitch measures injecting and healing a
// complete partition through the OpenFlow-style backend.
func BenchmarkPartitionInjectSwitch(b *testing.B) {
	benchPartitionInject(b, SwitchBackend)
}

// BenchmarkPartitionInjectFirewall measures the iptables-style backend
// — the ablation between NEAT's two partitioner implementations.
func BenchmarkPartitionInjectFirewall(b *testing.B) {
	benchPartitionInject(b, FirewallBackend)
}

func benchPartitionInject(b *testing.B, backend Backend) {
	eng := NewEngine(Options{Backend: backend})
	defer eng.Shutdown()
	a := []NodeID{"s1", "s2"}
	bb := []NodeID{"s3", "s4", "s5"}
	for _, id := range append(a, bb...) {
		eng.AddNode(id, RoleServer)
		eng.Network().Register(id, func(netsim.Packet) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := eng.Complete(a, bb)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Heal(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricSend measures raw packet delivery through the
// three-stage pipeline.
func BenchmarkFabricSend(b *testing.B) {
	n := netsim.New(netsim.Options{})
	sw := switchfab.New()
	n.SetSwitch(sw)
	n.Register("a", func(netsim.Packet) {})
	n.Register("b", func(netsim.Packet) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Send("a", "b", i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKVPutHealthy measures a majority-concern write on a healthy
// three-replica kvstore — the baseline the failure scenarios deviate
// from.
func BenchmarkKVPutHealthy(b *testing.B) {
	eng := core.NewEngine(core.Options{})
	cfg := kvstore.Config{
		Replicas:               []netsim.NodeID{"s1", "s2", "s3"},
		WriteConcern:           kvstore.WriteMajority,
		ApplyBeforeReplicate:   true,
		StepDownOnLostMajority: true,
		HeartbeatInterval:      10 * time.Millisecond,
		ElectionTimeout:        40 * time.Millisecond,
		RPCTimeout:             30 * time.Millisecond,
	}
	sys := kvstore.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		b.Fatal(err)
	}
	cl := kvstore.NewClient(eng.Network(), "c1", cfg.Replicas, 100*time.Millisecond)
	defer func() {
		cl.Close()
		eng.Shutdown()
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Put("k", "v"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCatalogLoad measures building the full 136-failure dataset
// with all quota assignment.
func BenchmarkCatalogLoad(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(catalog.Load()) != 136 {
			b.Fatal("bad dataset")
		}
	}
}

// BenchmarkFailover measures time from isolating the leader to the
// majority side electing a replacement, per election mode — the
// ablation over the Table 4 criteria. One iteration = deploy,
// partition, wait for the new leader, tear down.
func BenchmarkFailover(b *testing.B) {
	modes := map[string]election.Mode{
		"quorum":      election.ModeQuorum,
		"longest-log": election.ModeLongestLog,
		"latest-ts":   election.ModeLatestTS,
		"lowest-id":   election.ModeLowestID,
	}
	for name, mode := range modes {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := failoverOnce(mode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func failoverOnce(mode election.Mode) error {
	eng := core.NewEngine(core.Options{})
	defer eng.Shutdown()
	replicas := []netsim.NodeID{"s1", "s2", "s3"}
	for _, id := range replicas {
		eng.AddNode(id, core.RoleServer)
	}
	cfg := kvstore.Config{
		Replicas:               replicas,
		ElectionMode:           mode,
		WriteConcern:           kvstore.WriteMajority,
		ApplyBeforeReplicate:   true,
		StepDownOnLostMajority: true,
		HeartbeatInterval:      10 * time.Millisecond,
		ElectionTimeout:        40 * time.Millisecond,
		LeaseMisses:            8,
		RPCTimeout:             30 * time.Millisecond,
	}
	sys := kvstore.NewSystem(eng.Network(), cfg)
	if err := eng.Deploy(sys); err != nil {
		return err
	}
	if _, err := eng.Complete(
		[]netsim.NodeID{"s1"}, []netsim.NodeID{"s2", "s3"}); err != nil {
		return err
	}
	if id := sys.WaitForLeaderAmong([]netsim.NodeID{"s2", "s3"}, 3*time.Second); id == "" {
		return fmt.Errorf("no failover under mode %v", mode)
	}
	return nil
}

// --- campaign clock benchmarks (the virtual-time perf trajectory) ---

// benchCampaign runs one campaign round per registered target per
// iteration and reports throughput as rounds/sec. The two variants
// differ only in the clock driving each round: the wall clock, which
// pays every election timeout and workload sleep in real time, or a
// per-round simulated clock (internal/clock), which advances straight
// to the next timer deadline whenever the round quiesces. Recorded
// results live in BENCH_campaign.json.
func benchCampaign(b *testing.B, virtual bool) {
	targets, err := campaign.Select("all")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := campaign.Run(campaign.Config{
			Targets:     targets,
			Rounds:      1,
			Seed:        int64(i) + 1,
			Shrink:      false,
			VirtualTime: virtual,
		})
		if res.Errors > 0 {
			b.Fatalf("campaign reported %d round errors", res.Errors)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(targets))/b.Elapsed().Seconds(), "rounds/sec")
}

// BenchmarkCampaignSimClock fuzzes every target on virtual time.
func BenchmarkCampaignSimClock(b *testing.B) { benchCampaign(b, true) }

// BenchmarkCampaignRealClock is the wall-clock baseline. Skipped in
// -short mode: a single iteration takes tens of seconds, all of it
// spent sleeping.
func BenchmarkCampaignRealClock(b *testing.B) {
	if testing.Short() {
		b.Skip("real-clock campaign baseline is wall-clock-bound; skipped in short mode")
	}
	benchCampaign(b, false)
}
